package tools

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"jasworkload/internal/hpm"
	"jasworkload/internal/power4"
	"jasworkload/internal/sim"
)

// The vmstat and hpmstat text renderers are consumed verbatim by jasd's
// figure endpoints and by the CLI tools, so their column layout is wire
// format: these tests pin the renderings byte-for-byte against golden
// files built from fixed synthetic inputs. Regenerate after an intentional
// format change with:
//
//	go test ./internal/tools/ -run TestGolden -update

var update = flag.Bool("update", false, "rewrite the golden files")

// checkGolden compares got against testdata/<name>, rewriting with -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// goldenWindows builds a fixed window sequence covering the rendering's
// edge cases: ramp, GC pause, I/O wait, and a fully idle window.
func goldenWindows() []sim.WindowStats {
	ws := []sim.WindowStats{
		{Index: 0, StartMS: 0, UtilUser: 0.42, UtilSys: 0.08, UtilIdle: 0.50},
		{Index: 1, StartMS: 1000, UtilUser: 0.71, UtilSys: 0.12, UtilIdle: 0.11, UtilIOWait: 0.06},
		{Index: 2, StartMS: 2000, UtilUser: 0.66, UtilSys: 0.10, UtilIdle: 0.04, UtilIOWait: 0.20, GCs: 1, GCPauseMS: 212.4},
		{Index: 3, StartMS: 3000, UtilIdle: 1.0},
	}
	ws[1].Completions = []int{17, 4, 0, 0}
	ws[2].Completions = []int{12, 0, 0, 2}
	return ws
}

func TestGoldenVMStat(t *testing.T) {
	checkGolden(t, "golden_vmstat.txt", VMStat(goldenWindows()))
}

func TestGoldenHPMStat(t *testing.T) {
	src := &fakeSrc{}
	g, ok := hpm.GroupByName(hpm.StandardGroups(), "cpi")
	if !ok {
		t.Fatal("cpi group missing")
	}
	m, err := hpm.NewMonitor(src, g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		src.ctr.Add(power4.EvCycles, 10_000*i)
		src.ctr.Add(power4.EvInstCompleted, 3_000*i)
		m.Tick()
	}
	// maxRows below the sample count exercises the tail-window clamp.
	checkGolden(t, "golden_hpmstat.txt", HPMStat(m, 4))
}
