package tools

import (
	"strings"
	"testing"

	"jasworkload/internal/hpm"
	"jasworkload/internal/jvm"
	"jasworkload/internal/power4"
	"jasworkload/internal/server"
	"jasworkload/internal/sim"
)

func sampleMethods(t *testing.T) []*jvm.Method {
	t.Helper()
	cfg := jvm.DefaultProfileConfig()
	cfg.NumMethods = 200
	cfg.WarmSet = 20
	ms, err := jvm.GenerateMethods(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestTProfShares(t *testing.T) {
	var segs [server.NumSegments]uint64
	segs[server.SegWASJit] = 300
	segs[server.SegWASNative] = 300
	segs[server.SegWebServer] = 100
	segs[server.SegDB2] = 200
	segs[server.SegKernel] = 100
	rep := TProf(segs, sampleMethods(t), 5)
	var sum float64
	for _, v := range rep.SegmentShare {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
	if rep.SegmentShare[server.SegWASJit] != 0.3 {
		t.Fatalf("WASJit share = %v", rep.SegmentShare[server.SegWASJit])
	}
	if len(rep.TopMethods) != 5 {
		t.Fatalf("top methods = %d", len(rep.TopMethods))
	}
	// Top methods sorted descending.
	for i := 1; i < len(rep.TopMethods); i++ {
		if rep.TopMethods[i].Share > rep.TopMethods[i-1].Share {
			t.Fatal("top methods not sorted")
		}
	}
	if rep.MethodsFor50Pct <= 0 || rep.MethodsFor50Pct > 200 {
		t.Fatalf("MethodsFor50Pct = %d", rep.MethodsFor50Pct)
	}
	if rep.HottestOverallShare <= 0 || rep.HottestOverallShare > rep.TopMethods[0].Share {
		t.Fatalf("hottest overall = %v", rep.HottestOverallShare)
	}
	out := rep.String()
	for _, want := range []string{"WAS JITed", "DB2", "Flat profile", "Hottest"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTProfEmpty(t *testing.T) {
	var segs [server.NumSegments]uint64
	rep := TProf(segs, nil, 5)
	if len(rep.TopMethods) != 0 || rep.MethodsFor50Pct != 0 {
		t.Fatalf("empty profile produced data: %+v", rep)
	}
}

func TestVMStat(t *testing.T) {
	ws := []sim.WindowStats{
		{StartMS: 0, UtilUser: 0.7, UtilSys: 0.2, UtilIdle: 0.1, GCPauseMS: 120},
		{StartMS: 1000, UtilUser: 0.8, UtilSys: 0.1, UtilIdle: 0.1},
	}
	ws[0].Completions = []int{5}
	out := VMStat(ws)
	if !strings.Contains(out, "us  sy  id") {
		t.Fatalf("header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("row count wrong:\n%s", out)
	}
}

type fakeSrc struct{ ctr power4.Counters }

func (f *fakeSrc) Counters() power4.Counters { return f.ctr }

func TestHPMStat(t *testing.T) {
	src := &fakeSrc{}
	g, _ := hpm.GroupByName(hpm.StandardGroups(), "cpi")
	m, err := hpm.NewMonitor(src, g, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		src.ctr.Add(power4.EvCycles, 1000)
		src.ctr.Add(power4.EvInstCompleted, 300)
		m.Tick()
	}
	out := HPMStat(m, 3)
	if !strings.Contains(out, "PM_CYC") {
		t.Fatalf("event header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + 3 rows
	if len(lines) != 5 {
		t.Fatalf("want 3 rows, got:\n%s", out)
	}
	if !strings.Contains(lines[2], "1000") {
		t.Fatalf("sample values missing:\n%s", out)
	}
}
