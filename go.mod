module jasworkload

go 1.22
