# Tier-1 is what the roadmap requires green: build + tests.
# `make ci` is the tier-1+ gate: formatting, vet, build, the full test
# suite under the race detector (exercising the parallel experiment
# scheduler), and a one-shot benchmark smoke of the Figure 2 pipeline.

GO ?= go

.PHONY: all build test ci fmt vet race equiv bench-smoke bench-json report

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The batched pipeline must be bit-equivalent to the per-instruction
# reference; run that guard on its own so a failure names it directly.
equiv:
	$(GO) test -run 'TestDetailStreamEquivalence' ./internal/sim/

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig2|BenchmarkDetailStream|BenchmarkBuildReport' -benchtime 1x .

# Measured numbers for the README perf table: the stream benchmarks get
# 5 runs of 6 iterations (min-of-5 rides out shared-host noise), the
# full-report benchmark is too slow for that and gets 3 single-shot runs.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkDetailStream' -benchmem -benchtime 6x -count 5 . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkBuildReport' -benchmem -benchtime 1x -count 3 . ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_PR2.json
	@cat BENCH_PR2.json

ci: fmt vet build race equiv bench-smoke

# Regenerate the paper-vs-measured table (EXPERIMENTS.md format).
report:
	$(GO) run ./cmd/jasrun -markdown
