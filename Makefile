# Tier-1 is what the roadmap requires green: build + tests.
# `make ci` is the tier-1+ gate: formatting, vet, build, the full test
# suite under the race detector with shuffled test order (exercising the
# parallel experiment scheduler and the jasd worker pool), the workload
# pack calibration gate (quick-scale scalars + report vs testdata
# goldens for all three packs), a one-shot benchmark smoke of the
# Figure 2 pipeline, the jasd service smoke (real daemon on a
# random port, golden-report diff, graceful drain), the sweep smoke
# (12-cell grid through the real daemon costing exactly one
# request-level simulation), and the loadgen smoke (ramp spec vs its
# recorded trace: distinct jobs, byte-identical reports).

GO ?= go

.PHONY: all build test ci fmt vet race equiv calibrate bench-smoke bench-json report service-smoke sweep-smoke loadgen-smoke store-smoke shard-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -shuffle=on ./...

# The batched pipeline must be bit-equivalent to the per-instruction
# reference, the decoupled stage pipeline bit-equivalent to the fused
# loop at every stage-buffer size, and the core-sharded schedule
# bit-equivalent at every shard count, queue depth, and GOMAXPROCS; run
# those guards on their own so a failure names them directly, then once
# more under the race detector so the concurrent schedules (stage rings
# and the shard merge) are exercised for data races too.
equiv:
	$(GO) test -run 'TestDetailStreamEquivalence' ./internal/sim/
	$(GO) test -run 'TestPipeline' ./internal/power4/
	$(GO) test -run 'TestSharded' ./internal/power4/
	$(GO) test -run 'TestEngineSharded' ./internal/sim/
	$(GO) test -race -run 'TestPipelineEquivalence|TestShardedEquivalence|TestEnginePipelined|TestEngineSharded' ./internal/power4/ ./internal/sim/

# The workload-pack calibration gate: every registered scenario pack
# (jas2004, dataanalytics, virtweb) re-derives its quick-scale headline
# scalars and full markdown report and must match the pinned goldens
# under testdata/ byte for byte. jas2004's report golden is
# testdata/golden_report_quick.md itself, so this doubles as the
# zero-behaviour-change guard for the workload refactor. Regenerate
# deliberately with `go run ./cmd/calibrate -update -workload all`.
calibrate:
	$(GO) run ./cmd/calibrate -check -workload all

# The floor checks (JAS_BENCH_FLOOR=1) fail if the pipelined or the
# sharded-auto detail stream is slower than the fused loop: neither
# schedule may ever be a pessimization on the CI host.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig2|BenchmarkDetailStream|BenchmarkBuildReport' -benchtime 1x .
	JAS_BENCH_FLOOR=1 $(GO) test -run 'TestPipelinedFloor|TestShardedFloor' -count 1 .

# Measured numbers for the README perf table: the stream benchmarks get
# 5 runs of 6 iterations (min-of-5 rides out shared-host noise), the
# full-report benchmark is too slow for that and gets 3 single-shot runs,
# and the jasd server path (submit + dedup + cached-report serve, client
# parallelism 1/4/8) gets 3 runs of 300 round trips. BENCH_OUT names the
# artifact; BENCH_BASELINE (a previous artifact) adds per-benchmark
# min-vs-min speedup deltas to it.
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASELINE ?= BENCH_PR8.json
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkDetailStream' -benchmem -benchtime 6x -count 5 . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkLoadgenWindow' -benchmem -benchtime 1000x -count 5 . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkBuildReport' -benchmem -benchtime 1x -count 3 . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSweepGrid' -benchtime 1x -count 3 . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkServeRuns' -benchtime 300x -count 3 ./internal/service/ ; } \
	| $(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -out $(BENCH_OUT)
	@cat $(BENCH_OUT)

# End-to-end smoke of the serving layer: real jasd on a random port,
# jasctl submit, golden-report diff, /metrics sanity, SIGTERM drain.
service-smoke:
	sh scripts/service_smoke.sh

# End-to-end smoke of the sweep orchestration: a 12-cell page-size x
# detail-frac grid through a real daemon must execute exactly one
# request-level simulation (split-key reuse), verified from /metrics.
sweep-smoke:
	sh scripts/sweep_smoke.sh

# End-to-end smoke of the load generator: jasrun records a ramp arrival
# trace standalone, jasd serves steady + ramp-spec + trace-replay jobs
# (three distinct job IDs), and the replay's markdown report must be
# byte-identical to the generating run's.
loadgen-smoke:
	sh scripts/loadgen_smoke.sh

# End-to-end smoke of the persistent artifact store: jasd with -store-dir
# survives kill -9 and serves the resubmitted run byte-identically with
# zero re-simulation; two replicas sharing one store cost one simulation
# total; a -route router fronts both replicas.
store-smoke:
	sh scripts/store_smoke.sh

# End-to-end smoke of the core-sharded detail schedule: the quick-scale
# report generated by jasrun -sharded and served by a real jasd -sharded
# must both be byte-identical to the pinned golden, and /metrics must
# surface the shard gauge and merge-stall counters.
shard-smoke:
	sh scripts/shard_smoke.sh

ci: fmt vet build race equiv calibrate bench-smoke service-smoke sweep-smoke loadgen-smoke store-smoke shard-smoke

# Regenerate the paper-vs-measured table (EXPERIMENTS.md format).
report:
	$(GO) run ./cmd/jasrun -markdown
