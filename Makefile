# Tier-1 is what the roadmap requires green: build + tests.
# `make ci` is the tier-1+ gate: formatting, vet, build, the full test
# suite under the race detector (exercising the parallel experiment
# scheduler), and a one-shot benchmark smoke of the Figure 2 pipeline.

GO ?= go

.PHONY: all build test ci fmt vet race bench-smoke report

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig2' -benchtime 1x .

ci: fmt vet build race bench-smoke

# Regenerate the paper-vs-measured table (EXPERIMENTS.md format).
report:
	$(GO) run ./cmd/jasrun -markdown
