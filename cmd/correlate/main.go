// Command correlate runs the paper's Figure 10 analysis: Pearson
// correlation of every hardware event against per-window CPI, plus the
// cross-correlations the text quotes.
//
// Usage:
//
//	correlate [-scale quick|standard] [-ir N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"jasworkload/internal/core"
)

func main() {
	scale := flag.String("scale", "quick", "run scale: quick or standard")
	ir := flag.Int("ir", 0, "override the injection rate (0 = scale default)")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	flag.Parse()

	sc := core.ScaleQuick
	if *scale == "standard" {
		sc = core.ScaleStandard
	}
	cfg := core.DefaultRunConfig(sc)
	cfg.Seed = *seed
	if *ir > 0 {
		cfg.IR = *ir
	}
	d, err := core.ForConfig(cfg).Detail()
	if err != nil {
		fmt.Fprintln(os.Stderr, "correlate:", err)
		os.Exit(1)
	}
	f10, err := d.Fig10()
	if err != nil {
		fmt.Fprintln(os.Stderr, "correlate:", err)
		os.Exit(1)
	}
	fmt.Print(f10.String())
}
