// Command tprof mirrors the AIX tprof profiler the paper used for Figure 4:
// it runs the workload at request-level fidelity and prints the
// component-level CPU breakdown and the flat method profile, plus a
// vmstat-style utilization trace.
//
// Usage:
//
//	tprof [-ir N] [-seconds N] [-seed N] [-top N] [-vmstat]
package main

import (
	"flag"
	"fmt"
	"os"

	"jasworkload/internal/core"
	"jasworkload/internal/tools"
)

func main() {
	ir := flag.Int("ir", 30, "injection rate")
	seconds := flag.Int("seconds", 90, "run length in simulated seconds")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	top := flag.Int("top", 10, "hottest methods to list")
	vmstat := flag.Bool("vmstat", false, "also print the per-window vmstat view")
	flag.Parse()

	cfg := core.DefaultRunConfig(core.ScaleQuick)
	cfg.IR = *ir
	cfg.Seed = *seed
	cfg.DurationMS = float64(*seconds) * 1000
	cfg.RampMS = cfg.DurationMS / 5

	run, err := core.ForConfig(cfg).RequestLevel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tprof:", err)
		os.Exit(1)
	}
	rep := tools.TProf(run.SegmentTotals(), run.SUT.JIT.Methods(), *top)
	fmt.Print(rep.String())
	if *vmstat {
		ws := run.Windows()
		if len(ws) > 30 {
			ws = ws[len(ws)-30:]
		}
		fmt.Print(tools.VMStat(ws))
	}
}
