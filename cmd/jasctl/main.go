// Command jasctl is the client for jasd, the characterization daemon.
//
// Usage:
//
//	jasctl [-addr http://127.0.0.1:8077] <command> [flags]
//
// Commands:
//
//	submit  [-scale quick] [-ir N] [-seed N] [-heap-mb N] [-heap-page 4K|16M]
//	        [-duration-ms N] [-ramp-ms N] [-workload NAME] [-timeout D]
//	        [-arrival SPEC.json] [-replay-trace TRACE.ndjson]
//	        [-retries N] [-wait] [-format json|md]
//	        submit a run; prints the job status, or (with -wait) blocks and
//	        prints the finished report. -timeout sets the run's execution
//	        deadline (timeout_s). -arrival embeds a loadgen spec file in
//	        the JobSpec; -replay-trace converts a recorded v1 NDJSON trace
//	        into an inline trace spec and submits that, so the server
//	        replays the captured load. With -retries, queue-full
//	        rejections are retried up to N times, sleeping the server's
//	        Retry-After hint plus jitter between attempts.
//	status  <id>             print a job's status
//	list                     list all jobs
//	cancel  <id>             release one submission reference; the last
//	                         release aborts an unfinished run mid-window
//	report  <id> [-wait] [-format json|md]
//	        fetch a finished report
//	stream  <id>             tail the live per-window NDJSON stream; on a
//	                         dropped connection, resumes from the last line
//	                         seen instead of replaying from event zero
//	figure  <id> <fig> [-format json|md]
//	        fetch one figure (fig2..fig10, tprof, vmstat, locking, scalars,
//	        crosschecks, largepages)
//	sweep   -grid FILE [-timeout D] [-tail] [-table]
//	        submit a parameter sweep from a JSON spec file ("-" = stdin:
//	        {"base": {...JobSpec...}, "axes": [{"param": ..., "values":
//	        [...]}]}). By default tails the per-cell NDJSON row stream
//	        until the sweep finishes; -tail=false just prints the sweep
//	        status. -table fetches the cross-cell comparison table once
//	        the sweep is done. -timeout sets each cell's run deadline.
//	sweep   list|status|cancel|table|stream [<id>]
//	        inspect or cancel an existing sweep
//	workloads                list the server's registered workload packs
//	metrics                  dump the Prometheus /metrics exposition
//
// Exit status 4 means the server rejected the submission with 429 (queue
// full) and the retry budget (if any) is exhausted; the Retry-After hint
// is printed to stderr.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"jasworkload/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "jasd base URL")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	// Every long-lived wait below (429 retry backoff, stream resume poll)
	// selects on this context, so a Ctrl-C lands immediately instead of
	// after the current sleep expires.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch cmd {
	case "submit":
		err = submit(ctx, *addr, args)
	case "status":
		err = get(*addr, args, "", false)
	case "list":
		err = doJSON(*addr+"/v1/runs", nil)
	case "cancel":
		err = cancel(*addr, args)
	case "report":
		err = report(*addr, args)
	case "stream":
		err = stream(ctx, *addr, args)
	case "sweep":
		err = sweepCmd(ctx, *addr, args)
	case "figure":
		err = figure(*addr, args)
	case "workloads":
		err = raw(*addr + "/v1/workloads")
	case "metrics":
		err = raw(*addr + "/metrics")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jasctl:", err)
		os.Exit(1)
	}
}

// sleepCtx sleeps for d unless ctx is cancelled first, in which case it
// returns the context error immediately.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: jasctl [-addr URL] submit|status|list|cancel|report|stream|figure|sweep|workloads|metrics [flags]")
	os.Exit(2)
}

// submit posts a JobSpec assembled from flags.
func submit(ctx context.Context, addr string, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	scale := fs.String("scale", "quick", "run scale: quick, standard, or full")
	ir := fs.Int("ir", 0, "injection rate override")
	seed := fs.Int64("seed", 0, "run seed (0 = server default)")
	heapMB := fs.Uint64("heap-mb", 0, "heap size override, MB")
	heapPage := fs.String("heap-page", "", "heap page size: 4K or 16M")
	durationMS := fs.Float64("duration-ms", 0, "run duration override, ms")
	rampMS := fs.Float64("ramp-ms", 0, "ramp override, ms")
	workloadName := fs.String("workload", "", "workload pack (server default jas2004; see GET /v1/workloads)")
	arrivalFile := fs.String("arrival", "", "loadgen arrival spec file (JSON) to embed in the JobSpec")
	replayTrace := fs.String("replay-trace", "", "recorded v1 NDJSON trace to replay (converted to an inline trace spec)")
	timeout := fs.Duration("timeout", 0, "run execution deadline (0 = server default)")
	retries := fs.Int("retries", 0, "retry queue-full rejections up to N times, honoring Retry-After")
	wait := fs.Bool("wait", false, "block until the run finishes and print its report")
	format := fs.String("format", "json", "report format with -wait: json or md")
	fs.Parse(args)

	spec := map[string]any{"scale": *scale}
	if *ir > 0 {
		spec["ir"] = *ir
	}
	if *seed != 0 {
		spec["seed"] = *seed
	}
	if *heapMB > 0 {
		spec["heap_mb"] = *heapMB
	}
	if *heapPage != "" {
		spec["heap_page"] = *heapPage
	}
	if *durationMS > 0 {
		spec["duration_ms"] = *durationMS
	}
	if *rampMS > 0 {
		spec["ramp_ms"] = *rampMS
	}
	if *workloadName != "" {
		spec["workload"] = *workloadName
	}
	if *arrivalFile != "" && *replayTrace != "" {
		return fmt.Errorf("-arrival and -replay-trace are mutually exclusive")
	}
	if *arrivalFile != "" {
		raw, err := os.ReadFile(*arrivalFile)
		if err != nil {
			return err
		}
		// Parse locally so a typo fails here with a line-level error, and
		// embed the validated document verbatim (the server canonicalizes).
		if _, err := loadgen.Parse(raw); err != nil {
			return err
		}
		spec["arrival"] = json.RawMessage(raw)
	}
	if *replayTrace != "" {
		f, err := os.Open(*replayTrace)
		if err != nil {
			return err
		}
		tr, err := loadgen.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		inline, err := json.Marshal(tr.Spec())
		if err != nil {
			return err
		}
		spec["arrival"] = json.RawMessage(inline)
	}
	if *timeout > 0 {
		spec["timeout_s"] = timeout.Seconds()
	}
	body, _ := json.Marshal(spec)

	url := addr + "/v1/runs"
	if *wait {
		url += "?wait=1&format=" + *format
	}
	resp, err := post429Retry(ctx, url, "application/json", body, *retries, sleepCtx)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		fmt.Fprintf(os.Stderr, "jasctl: queue full, Retry-After %ss\n", resp.Header.Get("Retry-After"))
		os.Exit(4)
	}
	return dump(resp)
}

// post429Retry POSTs body to url, retrying up to retries times when the
// server answers 429 with a Retry-After hint. Each backoff runs through
// the injected sleep so an interrupt (or a test) can cut it short; a
// cancelled sleep aborts the whole loop with the context error. Once the
// retry budget is spent the final 429 response is returned to the caller
// un-retried, body open, so the caller can surface the hint.
func post429Retry(ctx context.Context, url, contentType string, body []byte, retries int, sleep func(context.Context, time.Duration) error) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
			return resp, nil
		}
		hint := resp.Header.Get("Retry-After")
		resp.Body.Close()
		// Honor the server's hint, jittered up to +50% so a herd of
		// rejected clients does not re-converge on the same instant.
		secs, err := strconv.Atoi(hint)
		if err != nil || secs < 1 {
			secs = 1
		}
		d := time.Duration((1 + 0.5*rand.Float64()) * float64(secs) * float64(time.Second))
		fmt.Fprintf(os.Stderr, "jasctl: queue full, retry %d/%d in %s\n", attempt+1, retries, d.Round(100*time.Millisecond))
		if err := sleep(ctx, d); err != nil {
			return nil, err
		}
	}
}

// cancel releases one submission reference via DELETE /v1/runs/{id}.
func cancel(addr string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel needs a job id")
	}
	req, err := http.NewRequest(http.MethodDelete, addr+"/v1/runs/"+args[0], nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

// report fetches /v1/runs/{id}/report.
func report(addr string, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	wait := fs.Bool("wait", false, "block until the run finishes")
	format := fs.String("format", "json", "json or md")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("report needs a job id")
	}
	q := "?format=" + *format
	if *wait {
		q += "&wait=1"
	}
	return raw(addr + "/v1/runs/" + fs.Arg(0) + "/report" + q)
}

// figure fetches /v1/runs/{id}/figures/{fig}.
func figure(addr string, args []string) error {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	format := fs.String("format", "json", "json or md")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("figure needs a job id and a figure name")
	}
	return raw(addr + "/v1/runs/" + fs.Arg(0) + "/figures/" + fs.Arg(1) + "?format=" + *format)
}

// stream tails the NDJSON window stream, line by line as it arrives. A
// dropped connection is retried with ?from=<events seen>, so the client
// resumes where it left off instead of replaying the whole history; the
// stream is complete once the terminal status line ({"done":true,...})
// has been printed.
func stream(ctx context.Context, addr string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stream needs a job id")
	}
	return tailStream(ctx, addr, "/v1/runs/"+args[0]+"/stream")
}

// tailStream tails one NDJSON stream endpoint (run windows or sweep rows)
// with ?from= resume on dropped connections. The inter-retry pause and
// the stream connection itself are both context-bound, so an interrupt
// during either returns right away.
func tailStream(ctx context.Context, addr, path string) error {
	const maxRetries = 5
	seen, retries := 0, 0
	for {
		err := streamOnce(ctx, addr, path, &seen)
		if err == nil {
			return nil
		}
		var term *terminalError
		if errors.As(err, &term) {
			return term.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		retries++
		if retries > maxRetries {
			return err
		}
		fmt.Fprintf(os.Stderr, "jasctl: stream interrupted (%v), resuming from event %d\n", err, seen)
		if err := sleepCtx(ctx, time.Second); err != nil {
			return err
		}
	}
}

// terminalError marks a stream failure no resume can fix: the server
// answered with an error status (job unknown, evicted, bad offset)
// rather than the connection dropping mid-stream.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// streamOnce runs one stream connection from event *seen, advancing
// *seen per event line. It returns nil once the terminal line arrives
// and an error for anything that warrants a resume.
func streamOnce(ctx context.Context, addr, path string, seen *int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s%s?from=%d", addr, path, *seen), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The body here is a JSON error, not stream output: a 404/410
		// means the job is gone and no resume can bring it back.
		return &terminalError{httpError(resp)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		var fin struct {
			Done bool `json:"done"`
		}
		if json.Unmarshal([]byte(line), &fin) == nil && fin.Done {
			return nil
		}
		*seen++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("stream ended without a terminal line")
}

// sweepCmd drives the sweep API. With -grid it submits a spec file and
// (by default) tails the row stream; without it, the first positional
// argument selects a lifecycle subcommand.
func sweepCmd(ctx context.Context, addr string, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	grid := fs.String("grid", "", `sweep spec JSON file ("-" = stdin)`)
	timeout := fs.Duration("timeout", 0, "per-cell run deadline (0 = server default)")
	tail := fs.Bool("tail", true, "tail the per-cell row stream until the sweep finishes")
	table := fs.Bool("table", false, "print the comparison table once the sweep is done")
	fs.Parse(args)
	if *grid != "" {
		return sweepSubmit(ctx, addr, *grid, *timeout, *tail, *table)
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("sweep needs -grid FILE or a subcommand: list|status|cancel|table|stream")
	}
	sub, rest := fs.Arg(0), fs.Args()[1:]
	if sub == "list" {
		return raw(addr + "/v1/sweeps")
	}
	if len(rest) != 1 {
		return fmt.Errorf("sweep %s needs a sweep id", sub)
	}
	id := rest[0]
	switch sub {
	case "status":
		return raw(addr + "/v1/sweeps/" + id)
	case "table":
		return raw(addr + "/v1/sweeps/" + id + "/table")
	case "stream":
		return tailStream(ctx, addr, "/v1/sweeps/"+id+"/stream")
	case "cancel":
		req, err := http.NewRequest(http.MethodDelete, addr+"/v1/sweeps/"+id, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return dump(resp)
	default:
		return fmt.Errorf("unknown sweep subcommand %q", sub)
	}
}

// sweepSubmit posts the grid file to /v1/sweeps and optionally tails the
// row stream and fetches the final comparison table.
func sweepSubmit(ctx context.Context, addr, grid string, timeout time.Duration, tail, table bool) error {
	var src io.Reader
	if grid == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(grid)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var spec map[string]any
	if err := json.NewDecoder(src).Decode(&spec); err != nil {
		return fmt.Errorf("parsing %s: %w", grid, err)
	}
	if timeout > 0 {
		base, _ := spec["base"].(map[string]any)
		if base == nil {
			base = map[string]any{}
		}
		base["timeout_s"] = timeout.Seconds()
		spec["base"] = base
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(addr+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return httpError(resp)
	}
	var st struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(respBody, &st); err != nil || st.ID == "" {
		return fmt.Errorf("unexpected submit response: %s", strings.TrimSpace(string(respBody)))
	}
	if !tail {
		_, err = os.Stdout.Write(append(bytes.TrimRight(respBody, "\n"), '\n'))
		return err
	}
	fmt.Fprintf(os.Stderr, "jasctl: sweep %s submitted (%d cells), tailing rows\n", st.ID, st.Cells)
	if err := tailStream(ctx, addr, "/v1/sweeps/"+st.ID+"/stream"); err != nil {
		return err
	}
	if table {
		return raw(addr + "/v1/sweeps/" + st.ID + "/table")
	}
	return nil
}

// get fetches /v1/runs/{id}{suffix}.
func get(addr string, args []string, suffix string, allowEmpty bool) error {
	if len(args) != 1 && !allowEmpty {
		return fmt.Errorf("need a job id")
	}
	return raw(addr + "/v1/runs/" + args[0] + suffix)
}

// doJSON GETs url and prints the body.
func doJSON(url string, _ []string) error { return raw(url) }

// raw GETs url and copies the body to stdout.
func raw(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

// dump copies the response body to stdout, turning non-2xx into an error.
func dump(resp *http.Response) error {
	if resp.StatusCode >= 300 {
		return httpError(resp)
	}
	_, err := io.Copy(os.Stdout, resp.Body)
	return err
}

// httpError renders a non-2xx response.
func httpError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
}
