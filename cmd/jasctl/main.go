// Command jasctl is the client for jasd, the characterization daemon.
//
// Usage:
//
//	jasctl [-addr http://127.0.0.1:8077] <command> [flags]
//
// Commands:
//
//	submit  [-scale quick] [-ir N] [-seed N] [-heap-mb N] [-heap-page 4K|16M]
//	        [-duration-ms N] [-ramp-ms N] [-wait] [-format json|md]
//	        submit a run; prints the job status, or (with -wait) blocks and
//	        prints the finished report
//	status  <id>             print a job's status
//	list                     list all jobs
//	report  <id> [-wait] [-format json|md]
//	        fetch a finished report
//	stream  <id>             tail the live per-window NDJSON stream
//	figure  <id> <fig> [-format json|md]
//	        fetch one figure (fig2..fig10, tprof, vmstat, locking, scalars,
//	        crosschecks, largepages)
//	metrics                  dump the Prometheus /metrics exposition
//
// Exit status 4 means the server rejected the submission with 429 (queue
// full); the Retry-After hint is printed to stderr.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "jasd base URL")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	var err error
	switch cmd {
	case "submit":
		err = submit(*addr, args)
	case "status":
		err = get(*addr, args, "", false)
	case "list":
		err = doJSON(*addr+"/v1/runs", nil)
	case "report":
		err = report(*addr, args)
	case "stream":
		err = stream(*addr, args)
	case "figure":
		err = figure(*addr, args)
	case "metrics":
		err = raw(*addr + "/metrics")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jasctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: jasctl [-addr URL] submit|status|list|report|stream|figure|metrics [flags]")
	os.Exit(2)
}

// submit posts a JobSpec assembled from flags.
func submit(addr string, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	scale := fs.String("scale", "quick", "run scale: quick, standard, or full")
	ir := fs.Int("ir", 0, "injection rate override")
	seed := fs.Int64("seed", 0, "run seed (0 = server default)")
	heapMB := fs.Uint64("heap-mb", 0, "heap size override, MB")
	heapPage := fs.String("heap-page", "", "heap page size: 4K or 16M")
	durationMS := fs.Float64("duration-ms", 0, "run duration override, ms")
	rampMS := fs.Float64("ramp-ms", 0, "ramp override, ms")
	wait := fs.Bool("wait", false, "block until the run finishes and print its report")
	format := fs.String("format", "json", "report format with -wait: json or md")
	fs.Parse(args)

	spec := map[string]any{"scale": *scale}
	if *ir > 0 {
		spec["ir"] = *ir
	}
	if *seed != 0 {
		spec["seed"] = *seed
	}
	if *heapMB > 0 {
		spec["heap_mb"] = *heapMB
	}
	if *heapPage != "" {
		spec["heap_page"] = *heapPage
	}
	if *durationMS > 0 {
		spec["duration_ms"] = *durationMS
	}
	if *rampMS > 0 {
		spec["ramp_ms"] = *rampMS
	}
	body, _ := json.Marshal(spec)

	url := addr + "/v1/runs"
	if *wait {
		url += "?wait=1&format=" + *format
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		fmt.Fprintf(os.Stderr, "jasctl: queue full, Retry-After %ss\n", resp.Header.Get("Retry-After"))
		io.Copy(os.Stderr, resp.Body)
		os.Exit(4)
	}
	return dump(resp)
}

// report fetches /v1/runs/{id}/report.
func report(addr string, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	wait := fs.Bool("wait", false, "block until the run finishes")
	format := fs.String("format", "json", "json or md")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("report needs a job id")
	}
	q := "?format=" + *format
	if *wait {
		q += "&wait=1"
	}
	return raw(addr + "/v1/runs/" + fs.Arg(0) + "/report" + q)
}

// figure fetches /v1/runs/{id}/figures/{fig}.
func figure(addr string, args []string) error {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	format := fs.String("format", "json", "json or md")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("figure needs a job id and a figure name")
	}
	return raw(addr + "/v1/runs/" + fs.Arg(0) + "/figures/" + fs.Arg(1) + "?format=" + *format)
}

// stream tails the NDJSON window stream, line by line as it arrives.
func stream(addr string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stream needs a job id")
	}
	resp, err := http.Get(addr + "/v1/runs/" + args[0] + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	return sc.Err()
}

// get fetches /v1/runs/{id}{suffix}.
func get(addr string, args []string, suffix string, allowEmpty bool) error {
	if len(args) != 1 && !allowEmpty {
		return fmt.Errorf("need a job id")
	}
	return raw(addr + "/v1/runs/" + args[0] + suffix)
}

// doJSON GETs url and prints the body.
func doJSON(url string, _ []string) error { return raw(url) }

// raw GETs url and copies the body to stdout.
func raw(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

// dump copies the response body to stdout, turning non-2xx into an error.
func dump(resp *http.Response) error {
	if resp.StatusCode >= 300 {
		return httpError(resp)
	}
	_, err := io.Copy(os.Stdout, resp.Body)
	return err
}

// httpError renders a non-2xx response.
func httpError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
}
