package main

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// recordedSleep is an injectable sleep that logs each requested duration
// and honors context cancellation like the real sleepCtx.
func recordedSleep(log *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		*log = append(*log, d)
		return nil
	}
}

// An immediate 200 needs no retries and no sleeps.
func TestPost429RetryImmediateSuccess(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var slept []time.Duration
	resp, err := post429Retry(context.Background(), srv.URL, "application/json", []byte(`{}`), 3, recordedSleep(&slept))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v on an immediate success", slept)
	}
}

// Two 429s then a 200: two backoffs, each within the jittered window of
// the server's Retry-After hint ([hint, 1.5*hint]).
func TestPost429RetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var slept []time.Duration
	resp, err := post429Retry(context.Background(), srv.URL, "application/json", nil, 5, recordedSleep(&slept))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d requests, want 3", calls.Load())
	}
	if len(slept) != 2 {
		t.Fatalf("%d sleeps, want 2: %v", len(slept), slept)
	}
	for i, d := range slept {
		if d < time.Second || d > 1500*time.Millisecond {
			t.Errorf("sleep %d = %v outside the jitter window [1s, 1.5s]", i, d)
		}
	}
}

// With a zero retry budget the final 429 comes straight back, hint intact,
// so the caller can print it and exit 4.
func TestPost429RetryBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	var slept []time.Duration
	resp, err := post429Retry(context.Background(), srv.URL, "application/json", nil, 0, recordedSleep(&slept))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if hint := resp.Header.Get("Retry-After"); hint != "7" {
		t.Fatalf("Retry-After hint %q, want 7", hint)
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v with no retry budget", slept)
	}
}

// A cancelled context aborts the backoff immediately — the Ctrl-C path.
// The real sleepCtx is used here, so a stuck timer would hang the test.
func TestPost429RetryCancelledDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "60")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	sleep := func(ctx context.Context, d time.Duration) error {
		cancel() // the interrupt arrives mid-backoff
		return sleepCtx(ctx, d)
	}
	start := time.Now()
	_, err := post429Retry(ctx, srv.URL, "application/json", nil, 3, sleep)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, the 60s hint was honored anyway", elapsed)
	}
}

// sleepCtx returns the context error without waiting when already cancelled.
func TestSleepCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := sleepCtx(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("pre-cancelled sleepCtx blocked")
	}
}
