// Command jasrun runs the full characterization — the simulated
// SPECjAppServer2004 SUT under HPM sampling — and prints every figure and
// table of the paper plus the paper-vs-measured report.
//
// The report and the figures share one run artifact: each fidelity
// (request-level, instruction-detail) simulates exactly once, the
// independent runs (cross-check variants, the disk-starved comparison, the
// 4 KB-page ablation leg) execute concurrently on the experiment
// scheduler, and every figure is a pure view over the cached runs.
// Per-phase wall-clock timings go to stderr so perf changes have a
// baseline to cite.
//
// Usage:
//
//	jasrun [-scale quick|standard|full] [-ir N] [-seed N] [-parallel N]
//	       [-workload NAME] [-list-workloads]
//	       [-arrival SPEC.json] [-replay-trace TRACE.ndjson]
//	       [-record-trace TRACE.ndjson] [-trace-only]
//	       [-duration-ms N] [-ramp-ms N]
//	       [-figures] [-markdown] [-cpuprofile FILE] [-memprofile FILE]
//
// Load generation: -arrival drives the run from a loadgen spec (cohorts
// with steady/burst/ramp/sweep processes); -replay-trace drives it from a
// recorded v1 NDJSON trace. -record-trace captures the run's arrival
// stream to a trace file — generation is standalone (sources never
// observe SUT state), so the recorded trace is exactly what the run
// injects; with -trace-only the trace is written without simulating
// anything.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"jasworkload/internal/core"
	"jasworkload/internal/loadgen"
	"jasworkload/internal/service"
)

func main() {
	scale := flag.String("scale", "quick", "run scale: quick, standard, or full")
	ir := flag.Int("ir", 0, "override the injection rate (0 = scale default)")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	workloadName := flag.String("workload", "", "workload pack to run (default jas2004; see -list-workloads)")
	listWorkloads := flag.Bool("list-workloads", false, "list the registered workload packs and exit")
	arrivalFile := flag.String("arrival", "", "drive the run from this loadgen spec (JSON)")
	replayTrace := flag.String("replay-trace", "", "drive the run from this recorded v1 NDJSON trace")
	recordTrace := flag.String("record-trace", "", "record the run's arrival stream to this trace file (requires -arrival or -replay-trace)")
	traceOnly := flag.Bool("trace-only", false, "with -record-trace: write the trace and exit without simulating")
	durationMS := flag.Float64("duration-ms", 0, "override the run duration in milliseconds (0 = scale default)")
	rampMS := flag.Float64("ramp-ms", 0, "override the ramp-up in milliseconds (0 = scale default)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
	pipelined := flag.Bool("pipelined", true, "run the detail stream through the decoupled stage pipeline (results are bit-identical either way)")
	sharded := flag.Bool("sharded", true, "shard the detail stream across per-simulated-core goroutines (bit-identical; auto-collapses to the fused loop on 1-CPU hosts)")
	figures := flag.Bool("figures", false, "print every figure's full rendering, not just the report")
	markdown := flag.Bool("markdown", false, "emit the report as a markdown table (EXPERIMENTS.md format)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *listWorkloads {
		// The same registry jasd serves on GET /v1/workloads.
		for _, wi := range service.ListWorkloads() {
			def := ""
			if wi.Default {
				def = " (default)"
			}
			fmt.Printf("%-16s %d classes%s  %s\n", wi.Name, wi.Classes, def, wi.Description)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jasrun:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jasrun:", err)
			}
		}()
	}

	var sc core.Scale
	switch *scale {
	case "quick":
		sc = core.ScaleQuick
	case "standard":
		sc = core.ScaleStandard
	case "full":
		sc = core.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "jasrun: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg := core.DefaultRunConfig(sc)
	cfg.Seed = *seed
	cfg.Workload = *workloadName
	if *ir > 0 {
		cfg.IR = *ir
	}
	cfg.DurationMS = *durationMS
	cfg.RampMS = *rampMS
	if *parallel > 0 {
		core.SetParallelism(*parallel)
	}
	core.SetPipelined(*pipelined)
	core.SetSharded(*sharded)

	if *arrivalFile != "" && *replayTrace != "" {
		fmt.Fprintln(os.Stderr, "jasrun: -arrival and -replay-trace are mutually exclusive")
		os.Exit(2)
	}
	switch {
	case *arrivalFile != "":
		raw, err := os.ReadFile(*arrivalFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
		spec, err := loadgen.Parse(raw)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
		cfg.Arrival = spec.Canonical()
	case *replayTrace != "":
		f, err := os.Open(*replayTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
		tr, err := loadgen.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
		cfg.Arrival = tr.Spec().Canonical()
	}
	if cfg.Arrival != "" {
		if err := core.CheckArrivalClasses(cfg.Arrival, cfg.Workload); err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
	}
	if *recordTrace != "" {
		// Recording is standalone generation: loadgen sources are pure
		// functions of (spec, config), so the trace written here is
		// byte-for-byte what a run under this config injects. The legacy
		// steady loop is not spec-driven, hence the -arrival requirement.
		if cfg.Arrival == "" {
			fmt.Fprintln(os.Stderr, "jasrun: -record-trace requires -arrival or -replay-trace (the legacy steady loop is not spec-driven; use an explicit steady spec to record it)")
			os.Exit(2)
		}
		if err := writeTrace(*recordTrace, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
		if *traceOnly {
			return
		}
	} else if *traceOnly {
		fmt.Fprintln(os.Stderr, "jasrun: -trace-only requires -record-trace")
		os.Exit(2)
	}

	timing := log.New(os.Stderr, "jasrun: ", 0)
	start := time.Now()

	// Warm the shared artifact: the three simulation phases are
	// independent, so they run concurrently on the scheduler. Phase times
	// overlap; the wall clock is the longest phase, not their sum.
	art := core.ForConfig(cfg)
	g := core.NewGroup(core.Parallelism())
	phase := func(name string, fn func() error) {
		g.Go(func() error {
			t := time.Now()
			if err := fn(); err != nil {
				return err
			}
			timing.Printf("phase %-22s %8.2fs", name, time.Since(t).Seconds())
			return nil
		})
	}
	phase("request-level run", func() error {
		_, err := art.RequestLevel()
		return err
	})
	phase("detail run", func() error {
		_, err := art.Detail()
		return err
	})
	phase("cross-check variants", func() error {
		_, err := art.CrossChecks()
		return err
	})
	if err := g.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "jasrun:", err)
		os.Exit(1)
	}

	if *figures {
		t := time.Now()
		if err := printFigures(art); err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
		timing.Printf("phase %-22s %8.2fs", "figure rendering", time.Since(t).Seconds())
	}

	t := time.Now()
	rep, err := core.BuildReport(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jasrun:", err)
		os.Exit(1)
	}
	timing.Printf("phase %-22s %8.2fs", "report assembly", time.Since(t).Seconds())
	timing.Printf("total %31.2fs (parallelism %d)", time.Since(start).Seconds(), core.Parallelism())

	if *markdown {
		fmt.Print(rep.Markdown())
		return
	}
	fmt.Print(rep.String())
}

// writeTrace records cfg's arrival stream to path as a v1 NDJSON trace.
// Generation is standalone — no simulation runs.
func writeTrace(path string, cfg core.RunConfig) error {
	tr, err := core.RecordArrivalTrace(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := loadgen.WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printFigures renders every figure from the shared artifact. Only the
// studies that need differently-configured systems (large-page 4 KB leg,
// disk-starved run) simulate anything here; everything else is a view.
func printFigures(art *core.Artifact) error {
	rl, err := art.RequestLevel()
	if err != nil {
		return err
	}
	fmt.Println(rl.Fig2())
	fmt.Println(rl.Fig3())
	fmt.Println(rl.Fig4())

	d, err := art.Detail()
	if err != nil {
		return err
	}
	f5, err := d.Fig5()
	if err != nil {
		return err
	}
	fmt.Println(f5)
	f6, err := d.Fig6()
	if err != nil {
		return err
	}
	fmt.Println(f6)
	f7, err := d.Fig7()
	if err != nil {
		return err
	}
	fmt.Println(f7)
	abl, err := art.LargePages()
	if err != nil {
		return err
	}
	fmt.Println(abl)
	f8, err := d.Fig8()
	if err != nil {
		return err
	}
	fmt.Println(f8)
	f9, err := d.Fig9()
	if err != nil {
		return err
	}
	fmt.Println(f9)
	lk, err := d.Locking()
	if err != nil {
		return err
	}
	fmt.Println(lk)
	f10, err := d.Fig10()
	if err != nil {
		return err
	}
	fmt.Println(f10)
	sc, err := art.Scalars()
	if err != nil {
		return err
	}
	fmt.Println(sc)
	cc, err := art.CrossChecks()
	if err != nil {
		return err
	}
	fmt.Println(cc)
	return nil
}
