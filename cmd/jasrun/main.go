// Command jasrun runs the full characterization — the simulated
// SPECjAppServer2004 SUT under HPM sampling — and prints every figure and
// table of the paper plus the paper-vs-measured report.
//
// Usage:
//
//	jasrun [-scale quick|standard|full] [-ir N] [-seed N] [-figures] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"

	"jasworkload/internal/core"
)

func main() {
	scale := flag.String("scale", "quick", "run scale: quick, standard, or full")
	ir := flag.Int("ir", 0, "override the injection rate (0 = scale default)")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	figures := flag.Bool("figures", false, "print every figure's full rendering, not just the report")
	markdown := flag.Bool("markdown", false, "emit the report as a markdown table (EXPERIMENTS.md format)")
	flag.Parse()

	var sc core.Scale
	switch *scale {
	case "quick":
		sc = core.ScaleQuick
	case "standard":
		sc = core.ScaleStandard
	case "full":
		sc = core.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "jasrun: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg := core.DefaultRunConfig(sc)
	cfg.Seed = *seed
	if *ir > 0 {
		cfg.IR = *ir
	}

	if *figures {
		if err := printFigures(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jasrun:", err)
			os.Exit(1)
		}
	}
	rep, err := core.BuildReport(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jasrun:", err)
		os.Exit(1)
	}
	if *markdown {
		fmt.Print(rep.Markdown())
		return
	}
	fmt.Print(rep.String())
}

func printFigures(cfg core.RunConfig) error {
	rl, err := core.RunRequestLevel(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rl.Fig2())
	fmt.Println(rl.Fig3())
	fmt.Println(rl.Fig4())

	d, err := core.RunDetail(cfg)
	if err != nil {
		return err
	}
	f5, err := d.Fig5()
	if err != nil {
		return err
	}
	fmt.Println(f5)
	f6, err := d.Fig6()
	if err != nil {
		return err
	}
	fmt.Println(f6)
	f7, err := d.Fig7()
	if err != nil {
		return err
	}
	fmt.Println(f7)
	abl, err := core.RunLargePageAblation(cfg)
	if err != nil {
		return err
	}
	fmt.Println(abl)
	f8, err := d.Fig8()
	if err != nil {
		return err
	}
	fmt.Println(f8)
	f9, err := d.Fig9()
	if err != nil {
		return err
	}
	fmt.Println(f9)
	lk, err := d.Locking()
	if err != nil {
		return err
	}
	fmt.Println(lk)
	f10, err := d.Fig10()
	if err != nil {
		return err
	}
	fmt.Println(f10)
	sc, err := core.RunScalars(cfg)
	if err != nil {
		return err
	}
	fmt.Println(sc)
	cc, err := core.RunCrossChecks(cfg)
	if err != nil {
		return err
	}
	fmt.Println(cc)
	return nil
}
