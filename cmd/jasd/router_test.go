package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRouter(t *testing.T, addrs ...string) *router {
	t.Helper()
	rt, err := newRouter(addrs)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// The ring is a pure function of the backend list: the same key maps to
// the same backend in every router instance, which is what lets clients
// hit any router (or a restarted one) and land on the owning replica.
func TestRouterRingStable(t *testing.T) {
	addrs := []string{"http://10.0.0.1:8077", "http://10.0.0.2:8077", "http://10.0.0.3:8077"}
	a, b := testRouter(t, addrs...), testRouter(t, addrs...)
	for _, key := range []string{"", "abc123", "deadbeef0001", "job-x", "sweep-y"} {
		if a.pick(key) != b.pick(key) {
			t.Errorf("key %q: instance A picks %d, B picks %d", key, a.pick(key), b.pick(key))
		}
	}
}

// With virtual nodes every backend owns a usable share of key space.
func TestRouterDistribution(t *testing.T) {
	rt := testRouter(t, "http://a:1", "http://b:1", "http://c:1")
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[rt.pick(strings.Repeat("k", 1+i%17)+string(rune('a'+i%26)))+0]++
	}
	for i, n := range counts {
		if n < 300 { // perfectly uniform would be 1000 each
			t.Errorf("backend %d owns only %d/3000 keys", i, n)
		}
	}
}

// ID-bearing paths route by the embedded ID, on every sub-resource alike,
// so a job's status, report, figures, and stream all reach the replica
// that accepted its submission.
func TestRouterPathID(t *testing.T) {
	cases := []struct {
		path string
		id   string
		ok   bool
	}{
		{"/v1/runs/abc123", "abc123", true},
		{"/v1/runs/abc123/report", "abc123", true},
		{"/v1/runs/abc123/figures/fig2", "abc123", true},
		{"/v1/runs/abc123/stream", "abc123", true},
		{"/v1/sweeps/s77/table", "s77", true},
		{"/v1/sweeps/s77", "s77", true},
		{"/v1/runs", "", false},
		{"/v1/runs/", "", false},
		{"/v1/sweeps", "", false},
		{"/metrics", "", false},
		{"/v1/workloads", "", false},
	}
	for _, tc := range cases {
		id, ok := pathID(tc.path)
		if id != tc.id || ok != tc.ok {
			t.Errorf("pathID(%q) = %q,%v want %q,%v", tc.path, id, ok, tc.id, tc.ok)
		}
	}
}

// A run submission routes by the job ID its canonical config derives, so
// equivalent specs — including ones differing only in delivery metadata
// like timeout_s — converge on one backend; and reading the body for the
// key leaves it intact for the proxy leg.
func TestRouterRunSubmissionKey(t *testing.T) {
	rt := testRouter(t, "http://a:1", "http://b:1")
	key := func(body string) string {
		r := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(body))
		k := rt.routeKey(r)
		got, err := io.ReadAll(r.Body)
		if err != nil || string(got) != body {
			t.Fatalf("body not restored after routing: %q, %v", got, err)
		}
		return k
	}
	base := key(`{"scale":"quick","seed":1}`)
	if base == "" {
		t.Fatal("run submission produced no routing key")
	}
	if k := key(`{"seed":1,"scale":"quick","timeout_s":30}`); k != base {
		t.Errorf("equivalent specs keyed differently: %q vs %q", k, base)
	}
	if k := key(`{"scale":"quick","seed":2}`); k == base {
		t.Error("distinct seeds share a routing key")
	}
	// A malformed spec still routes deterministically (by body) and the
	// owning backend reports the 400.
	if a, b := key(`{"scale":"nope"}`), key(`{"scale":"nope"}`); a != b || a == "" {
		t.Errorf("malformed spec not body-keyed deterministically: %q vs %q", a, b)
	}
}

// End to end through the proxy: a submission and the follow-up GET for its
// job ID land on the same live backend.
func TestRouterProxiesToOwner(t *testing.T) {
	hits := make([]int, 2)
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i]++
			io.Copy(io.Discard, r.Body)
			w.WriteHeader(http.StatusOK)
		}))
	}
	b0, b1 := mk(0), mk(1)
	defer b0.Close()
	defer b1.Close()

	rt := testRouter(t, b0.URL, b1.URL)
	front := httptest.NewServer(rt)
	defer front.Close()

	spec := `{"scale":"quick","seed":1}`
	resp, err := http.Post(front.URL+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits[0]+hits[1] != 1 {
		t.Fatalf("submission reached %d backends", hits[0]+hits[1])
	}
	owner := 0
	if hits[1] == 1 {
		owner = 1
	}

	// The GET routes by the ID in the path; derive it the way the router
	// derives the POST key so the two legs agree.
	r := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(spec))
	id := rt.routeKey(r)
	resp, err = http.Get(front.URL + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits[owner] != 2 {
		t.Fatalf("follow-up GET left the owning backend: hits %v", hits)
	}
}
