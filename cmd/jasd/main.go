// Command jasd is the characterization daemon: the paper's pipeline wrapped
// in a concurrent serving layer. Clients POST run configurations; jasd
// deduplicates identical configs onto one job (one simulation per fidelity,
// byte-identical bodies for every client), executes jobs on a bounded
// worker pool with an explicit wait queue (full queue = 429 + Retry-After),
// streams per-window statistics as NDJSON while runs execute, and serves
// finished reports and figures as JSON or markdown. Observability:
// Prometheus-text /metrics, /debug/pprof, and graceful drain on
// SIGINT/SIGTERM.
//
// Usage:
//
//	jasd [-addr :8077] [-workers 2] [-queue 8] [-retry-after 5s]
//	     [-drain 60s] [-parallel N] [-addrfile FILE]
//	     [-job-timeout 0] [-done-ttl 15m] [-done-cap 256]
//	     [-max-sweep-cells 64] [-store-dir DIR]
//	jasd -route URL,URL,... [-addr :8077] [-addrfile FILE]
//
// With -addr ending in :0 the kernel picks a free port; the resolved
// address is logged and, with -addrfile, written to FILE for scripts.
//
// -store-dir enables the persistent content-addressed artifact store:
// finished runs are written there atomically and reloaded on demand, so a
// restarted daemon (or another replica sharing the directory) serves
// byte-identical reports without re-simulating. Replicas racing the same
// config dedupe through store-level leases — one simulation total.
//
// -route turns the process into a stateless consistent-hash router over
// the listed replica base URLs: submissions and all follow-up requests
// for a job land on the replica that owns its ID.
//
// Retention: finished (or failed/canceled) jobs stay resident — reports,
// figures, and stream replay served — for -done-ttl, bounded to -done-cap
// jobs; older ones are evicted and their IDs answer 410 Gone.
// -job-timeout bounds each run's execution (a JobSpec's timeout_s
// overrides it per job); DELETE /v1/runs/{id} cancels a run once its last
// submitter lets go.
//
// POST /v1/sweeps expands a base config against parameter axes and fans
// the grid's cells across the same worker pool as ordinary jobs; cells
// differing only in detail-only knobs share one request-level simulation.
// -max-sweep-cells caps the expanded grid size per sweep.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jasworkload/internal/core"
	"jasworkload/internal/service"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address (host:0 picks a free port)")
	workers := flag.Int("workers", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 8, "jobs allowed to wait beyond those running")
	retryAfter := flag.Duration("retry-after", 5*time.Second, "Retry-After hint on queue-full rejections")
	drain := flag.Duration("drain", 60*time.Second, "graceful-shutdown deadline for in-flight runs")
	parallel := flag.Int("parallel", 0, "max concurrent simulations per job (0 = one per CPU)")
	pipelined := flag.Bool("pipelined", true, "run detail streams through the decoupled stage pipeline (results are bit-identical either way)")
	sharded := flag.Bool("sharded", true, "shard detail streams across per-simulated-core goroutines (bit-identical; auto-collapses to the fused loop on 1-CPU hosts)")
	addrfile := flag.String("addrfile", "", "write the resolved listen address to this file")
	jobTimeout := flag.Duration("job-timeout", 0, "per-run execution deadline (0 = none; timeout_s overrides per job)")
	doneTTL := flag.Duration("done-ttl", 15*time.Minute, "how long terminal jobs stay resident before eviction")
	doneCap := flag.Int("done-cap", 256, "max terminal jobs resident regardless of age")
	maxSweepCells := flag.Int("max-sweep-cells", 64, "max grid cells a single sweep may expand to")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory (empty = in-memory only)")
	route := flag.String("route", "", "comma-separated replica base URLs; run as a consistent-hash router instead of a daemon")
	flag.Parse()

	logger := log.New(os.Stderr, "jasd: ", log.LstdFlags)

	if *route != "" {
		runRouter(logger, *addr, *addrfile, *route)
		return
	}

	if *parallel > 0 {
		core.SetParallelism(*parallel)
	}
	core.SetPipelined(*pipelined)
	core.SetSharded(*sharded)
	if *storeDir != "" {
		st, err := core.OpenStore(*storeDir)
		if err != nil {
			logger.Fatal(err)
		}
		core.SetStore(st)
		logger.Printf("persistent artifact store at %s", *storeDir)
	}

	svc := service.New(service.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		RetryAfter:    *retryAfter,
		JobTimeout:    *jobTimeout,
		DoneTTL:       *doneTTL,
		DoneCap:       *doneCap,
		MaxSweepCells: *maxSweepCells,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on http://%s (workers=%d queue=%d parallelism=%d)",
		ln.Addr(), *workers, *queue, core.Parallelism())
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			logger.Fatal(err)
		}
	}

	srv := &http.Server{Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("received %s, draining (deadline %s)", sig, *drain)
	case err := <-errCh:
		logger.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job pool first — new submissions are rejected with 503,
	// queued jobs are failed without starting, in-flight runs get the
	// deadline. Clients blocked on wait=1 or a stream receive their bodies
	// as those runs complete; the HTTP shutdown afterwards then finds the
	// connections idle.
	if err := svc.Shutdown(ctx); err != nil {
		srv.Close()
		logger.Printf("exiting with runs still in flight: %v", err)
		os.Exit(1)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("drained cleanly")
}
