package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"jasworkload/internal/service"
)

// router is a thin consistent-hash front for N jasd replicas sharing one
// persistent artifact store. It owns no job state: each request is routed
// by its job identity — the same derivation the backends use — so every
// submission, status poll, and stream for one config lands on the replica
// that owns that job. Configs the ring maps to different replicas still
// cost one simulation total, because the replicas dedupe through the
// shared store's leases; the ring's job is to keep the *in-memory* job
// lifecycle (queue slot, stream hub, done-ring entry) on a single replica
// so wait=1 and stream resume work unchanged.
type router struct {
	ring     []ringPoint
	backends []*httputil.ReverseProxy
	addrs    []string
}

// ringPoint is one virtual node: a hash position owned by a backend index.
type ringPoint struct {
	hash    uint64
	backend int
}

// virtualNodes spreads each backend across the ring so load stays near
// uniform even with two or three replicas.
const virtualNodes = 64

// newRouter builds the ring over the given backend base URLs.
func newRouter(addrs []string) (*router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("router needs at least one backend")
	}
	rt := &router{addrs: addrs}
	for i, a := range addrs {
		u, err := url.Parse(a)
		if err != nil {
			return nil, fmt.Errorf("backend %q: %w", a, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("backend %q: need a full base URL like http://host:port", a)
		}
		rt.backends = append(rt.backends, httputil.NewSingleHostReverseProxy(u))
		for v := 0; v < virtualNodes; v++ {
			rt.ring = append(rt.ring, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", a, v)), backend: i})
		}
	}
	sort.Slice(rt.ring, func(a, b int) bool { return rt.ring[a].hash < rt.ring[b].hash })
	return rt, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return h.Sum64()
}

// pick maps a routing key to its owning backend index by walking the ring
// clockwise from the key's hash.
func (rt *router) pick(key string) int {
	h := hash64(key)
	i := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= h })
	if i == len(rt.ring) {
		i = 0
	}
	return rt.ring[i].backend
}

// routeKey derives the request's routing key. ID-bearing paths route by
// the embedded job or sweep ID; a run submission routes by the job ID its
// canonical config will get (so the POST and every later GET for it agree);
// a sweep submission routes by its body. Everything else — listings,
// /metrics, /v1/workloads — has no job identity and pins to a stable
// default backend.
func (rt *router) routeKey(r *http.Request) string {
	if id, ok := pathID(r.URL.Path); ok {
		return id
	}
	if r.Method == http.MethodPost && (r.URL.Path == "/v1/runs" || r.URL.Path == "/v1/sweeps") {
		body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
		r.Body.Close()
		if err != nil {
			body = nil
		}
		// Restore the body for the proxy leg.
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
		r.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil }
		if r.URL.Path == "/v1/runs" {
			var spec service.JobSpec
			if json.Unmarshal(body, &spec) == nil {
				if cfg, err := spec.RunConfig(); err == nil {
					return service.JobID(cfg)
				}
			}
		}
		// Sweeps (and malformed run specs, which any backend rejects the
		// same way) route by raw body: identical resubmissions stay put.
		return fmt.Sprintf("body:%016x", hash64(string(body)))
	}
	return ""
}

// pathID extracts the job or sweep ID from /v1/runs/{id}[/...] and
// /v1/sweeps/{id}[/...].
func pathID(path string) (string, bool) {
	for _, prefix := range []string{"/v1/runs/", "/v1/sweeps/"} {
		if rest, ok := strings.CutPrefix(path, prefix); ok && rest != "" {
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				rest = rest[:i]
			}
			if rest != "" {
				return rest, true
			}
		}
	}
	return "", false
}

// ServeHTTP proxies the request to the backend its routing key owns.
func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.backends[rt.pick(rt.routeKey(r))].ServeHTTP(w, r)
}

// runRouter is the -route mode entry point: a stateless front that shares
// the daemon's listener conventions (-addr, -addrfile, signal-driven
// shutdown) but owns no jobs of its own.
func runRouter(logger *log.Logger, addr, addrfile, route string) {
	var addrs []string
	for _, a := range strings.Split(route, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	rt, err := newRouter(addrs)
	if err != nil {
		logger.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("routing on http://%s across %d replicas: %s", ln.Addr(), len(addrs), strings.Join(addrs, ", "))
	if addrfile != "" {
		if err := os.WriteFile(addrfile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			logger.Fatal(err)
		}
	}

	srv := &http.Server{Handler: rt}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("received %s, draining", sig)
	case err := <-errCh:
		logger.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("drained cleanly")
}
