// Command benchjson turns `go test -bench` output on stdin into a small
// JSON summary for checking into the repo (see `make bench-json`).
//
// Shared CI hosts show heavy run-to-run noise (we have measured ±35% on
// the same binary), so each benchmark is run several times and the
// summary keeps min, mean and max per metric. The minimum is the
// least-contended sample and is what the README perf table cites.
//
// Usage:
//
//	go test -run '^$' -bench X -benchmem -count 5 . | benchjson -o BENCH.json
//
// With -baseline PREV.json, each benchmark also carries its min-vs-min
// speedup over the same benchmark in the previous summary
// (baseline min ns/op ÷ current min ns/op; >1 means faster now), so a
// PR's perf delta is readable straight from the checked-in artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type stat struct {
	Runs int     `json:"runs"`
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func newStat(xs []float64) *stat {
	if len(xs) == 0 {
		return nil
	}
	s := &stat{Runs: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}

type entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations_per_run"`
	NsPerOp     *stat   `json:"ns_per_op,omitempty"`
	InstrPerSec *stat   `json:"instr_per_s,omitempty"`
	RunsPerSec  *stat   `json:"runs_per_s,omitempty"`
	SimsPerCell *stat   `json:"sims_per_cell,omitempty"`
	BytesPerOp  *stat   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *stat   `json:"allocs_per_op,omitempty"`
	VsBaseline  float64 `json:"speedup_vs_baseline,omitempty"`
	samples     map[string][]float64
}

// loadBaseline reads a previous benchjson summary and returns each
// benchmark's minimum ns/op, keyed by name.
func loadBaseline(path string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev struct {
		Benchmarks []struct {
			Name    string `json:"name"`
			NsPerOp *stat  `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf, &prev); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	mins := make(map[string]float64, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		if b.NsPerOp != nil && b.NsPerOp.Min > 0 {
			mins[b.Name] = b.NsPerOp.Min
		}
	}
	return mins, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	outLong := flag.String("out", "", "output file (alias of -o)")
	baseline := flag.String("baseline", "", "previous summary JSON; adds per-benchmark min-vs-min speedups")
	flag.Parse()
	if *out == "" {
		out = outLong
	}

	var baseMins map[string]float64
	if *baseline != "" {
		var err error
		if baseMins, err = loadBaseline(*baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	var order []string
	byName := map[string]*entry{}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix go test appends. It only appears
		// when GOMAXPROCS > 1, and benchjson runs in the same pipeline as
		// the benchmarks, so match against our own value — a blanket
		// "trailing -number" strip would also eat sub-benchmark names
		// like ServeRuns/parallel-4.
		if procs := runtime.GOMAXPROCS(0); procs > 1 {
			if suffix := fmt.Sprintf("-%d", procs); strings.HasSuffix(name, suffix) {
				name = name[:len(name)-len(suffix)]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := byName[name]
		if e == nil {
			e = &entry{Name: name, samples: map[string][]float64{}}
			byName[name] = e
			order = append(order, name)
		}
		e.Iterations = iters
		// The rest is value/unit pairs: "123 ns/op", "456 allocs/op", ...
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			e.samples[fields[i+1]] = append(e.samples[fields[i+1]], v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	var entries []*entry
	for _, name := range order {
		e := byName[name]
		e.NsPerOp = newStat(e.samples["ns/op"])
		e.InstrPerSec = newStat(e.samples["instr/s"])
		e.RunsPerSec = newStat(e.samples["runs/s"])
		e.SimsPerCell = newStat(e.samples["sims/cell"])
		e.BytesPerOp = newStat(e.samples["B/op"])
		e.AllocsPerOp = newStat(e.samples["allocs/op"])
		if prev, ok := baseMins[name]; ok && e.NsPerOp != nil && e.NsPerOp.Min > 0 {
			e.VsBaseline = prev / e.NsPerOp.Min
		}
		entries = append(entries, e)
	}

	summary := struct {
		Go         string   `json:"go"`
		NumCPU     int      `json:"num_cpu"`
		GoMaxProcs int      `json:"gomaxprocs"`
		Protocol   string   `json:"protocol"`
		Baseline   string   `json:"baseline,omitempty"`
		Benchmarks []*entry `json:"benchmarks"`
		Speedup    float64  `json:"detail_stream_speedup,omitempty"`
		SweepWin   float64  `json:"sweep_grid_speedup,omitempty"`
		ShardWin   float64  `json:"shard_speedup,omitempty"`
	}{
		Go: runtime.Version(),
		// Host metadata: the sharded-vs-fused numbers only mean something
		// relative to the parallelism of the host that produced them (a
		// 1-vCPU host auto-collapses sharding to the fused loop, so its
		// shard_speedup is ~1 by design).
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Protocol:   "repeated runs per benchmark; cite min (least-contended sample) on noisy shared hosts; speedup_vs_baseline = baseline min ns/op over this min ns/op",
		Baseline:   *baseline,
		Benchmarks: entries,
	}
	// Headline ratio: reference (per-instruction, fast paths off) over
	// batched, both taken at their minimum ns/op.
	if b, r := byName["BenchmarkDetailStream"], byName["BenchmarkDetailStreamReference"]; b != nil && r != nil &&
		b.NsPerOp != nil && r.NsPerOp != nil && b.NsPerOp.Min > 0 {
		summary.Speedup = r.NsPerOp.Min / b.NsPerOp.Min
	}
	// Tentpole ratio: the same what-if grid with split-key reuse off over
	// on — how much wall clock the shared request-level runs save.
	if s, u := byName["BenchmarkSweepGridShared"], byName["BenchmarkSweepGridUnshared"]; s != nil && u != nil &&
		s.NsPerOp != nil && u.NsPerOp != nil && s.NsPerOp.Min > 0 {
		summary.SweepWin = u.NsPerOp.Min / s.NsPerOp.Min
	}
	// Shard ratio: the fused loop over the core-sharded schedule, both
	// consuming the identical interleaved multi-core feed, min-vs-min.
	if s, f := byName["BenchmarkDetailStreamSharded"], byName["BenchmarkDetailStreamFusedMulti"]; s != nil && f != nil &&
		s.NsPerOp != nil && f.NsPerOp != nil && s.NsPerOp.Min > 0 {
		summary.ShardWin = f.NsPerOp.Min / s.NsPerOp.Min
	}

	buf, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
