// Command calibrate is the model-validation harness used while tuning the
// simulator against the paper's numbers. It runs a detail-mode execution
// and prints:
//
//   - headline rates (CPI, speculation, per-load/per-store L1D miss,
//     branch misprediction, data-source shares, translation rates), and
//   - a per-event CPI-contribution table (event rate x worst-case penalty),
//     which shows where the model's cycles go.
//
// Usage:
//
//	calibrate [-scale quick|standard] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"jasworkload/internal/core"
	"jasworkload/internal/power4"
)

func main() {
	scale := flag.String("scale", "quick", "run scale: quick or standard")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	flag.Parse()

	sc := core.ScaleQuick
	if *scale == "standard" {
		sc = core.ScaleStandard
	}
	cfg := core.DefaultRunConfig(sc)
	cfg.Seed = *seed

	// One detail run from the shared artifact layer carries every standard
	// HPM group, so no group list is needed here.
	d, err := core.ForConfig(cfg).Detail()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	c := d.SUT.AggregateCounters()
	inst := float64(c.Get(power4.EvInstCompleted))
	fmt.Printf("instructions=%.3e  CPI=%.2f  dispatched/completed=%.2f\n", inst, c.CPI(), c.SpeculationRate())
	fmt.Printf("miss/load=%.3f  miss/store=%.3f  cond-miss=%.3f  target-miss=%.3f\n",
		c.Ratio(power4.EvL1DLoadMiss, power4.EvLoads),
		c.Ratio(power4.EvL1DStoreMiss, power4.EvStores),
		c.Ratio(power4.EvBrCondMispred, power4.EvBrCond),
		c.Ratio(power4.EvBrTargetMispred, power4.EvBrIndirect))
	lm := float64(c.Get(power4.EvL1DLoadMiss))
	fmt.Printf("sources: L2=%.2f L2.75shr=%.3f L2.75mod=%.3f L3=%.2f L3.5=%.3f mem=%.3f\n",
		float64(c.Get(power4.EvDataFromL2))/lm,
		float64(c.Get(power4.EvDataFromL275Shr))/lm,
		float64(c.Get(power4.EvDataFromL275Mod))/lm,
		float64(c.Get(power4.EvDataFromL3))/lm,
		float64(c.Get(power4.EvDataFromL35))/lm,
		float64(c.Get(power4.EvDataFromMem))/lm)
	fmt.Printf("DERAT=1/%.0f  DTLB/DERAT=%.2f  IERAT=1/%.0f  ITLB=1/%.0f  L1I=1/%.0f\n\n",
		inst/float64(c.Get(power4.EvDERATMiss)),
		c.Ratio(power4.EvDTLBMiss, power4.EvDERATMiss),
		inst/float64(c.Get(power4.EvIERATMiss)),
		inst/float64(c.Get(power4.EvITLBMiss)),
		inst/float64(c.Get(power4.EvL1IMiss)))

	p := power4.DefaultPenalties()
	rows := []struct {
		name string
		ev   power4.Event
		pen  float64
	}{
		{"cond mispredict", power4.EvBrCondMispred, p.CondMispred},
		{"target mispredict", power4.EvBrTargetMispred, p.TargetMispred},
		{"DERAT miss", power4.EvDERATMiss, p.DERATMiss},
		{"IERAT miss", power4.EvIERATMiss, p.DERATMiss},
		{"DTLB walk", power4.EvDTLBMiss, p.TLBWalk},
		{"ITLB walk", power4.EvITLBMiss, p.TLBWalk},
		{"store miss", power4.EvL1DStoreMiss, p.StoreMissCost},
		{"data from L2", power4.EvDataFromL2, p.L2Latency},
		{"data from L2.75", power4.EvDataFromL275Mod, p.RemoteL2},
		{"data from L3", power4.EvDataFromL3, p.L3Latency},
		{"data from L3.5", power4.EvDataFromL35, p.RemoteL3},
		{"data from memory", power4.EvDataFromMem, p.MemLatency},
		{"ifetch from L2", power4.EvIFetchL2, p.IMissL2},
		{"ifetch from L3", power4.EvIFetchL3, p.IMissL3},
		{"ifetch from memory", power4.EvIFetchMem, p.IMissMem},
		{"SYNC drain", power4.EvSyncCount, p.SyncDrainUser},
	}
	fmt.Println("event                  rate           max CPI contribution (rate x penalty)")
	for _, r := range rows {
		n := float64(c.Get(r.ev))
		fmt.Printf("%-20s  1/%-11.0f  %.3f\n", r.name, inst/n, n*r.pen/inst)
	}
	fmt.Println("\n(loads and I-fetches are partially hidden by the out-of-order window and")
	fmt.Println("prefetching; the contribution column is the unhidden worst case.)")
}
