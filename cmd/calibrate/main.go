// Command calibrate is the model-validation harness used while tuning the
// simulator against the paper's numbers. It runs a detail-mode execution
// and prints:
//
//   - headline rates (CPI, speculation, per-load/per-store L1D miss,
//     branch misprediction, data-source shares, translation rates), and
//   - a per-event CPI-contribution table (event rate x worst-case penalty),
//     which shows where the model's cycles go.
//
// It is also the calibration gate for the workload packs: with -check it
// re-derives each pack's quick-scale headline scalars and full markdown
// report and diffs them against the pinned goldens under testdata/, so a
// model or pack change that moves any pack's numbers fails CI until the
// goldens are deliberately regenerated with -update. jas2004's report
// golden is testdata/golden_report_quick.md itself — the same file the
// repo's golden test pins — so the default pack's gate is byte-identity
// with the pre-refactor output, not a separate copy that could drift.
//
// Usage:
//
//	calibrate [-scale quick|standard] [-seed N] [-workload NAME|all]
//	          [-check] [-update] [-golden-dir DIR]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"jasworkload/internal/core"
	"jasworkload/internal/power4"
	"jasworkload/internal/workload"
	_ "jasworkload/internal/workload/packs"
)

// gatedPacks are the packs the -check/-update gate pins. trade6 is the
// cross-check foil, exercised (and therefore pinned) through every pack's
// report, so it does not need a gate of its own.
var gatedPacks = []string{"jas2004", "dataanalytics", "virtweb"}

func main() {
	scale := flag.String("scale", "quick", "run scale: quick or standard")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	workloadName := flag.String("workload", "", "workload pack (default jas2004); \"all\" gates every pack with -check/-update")
	check := flag.Bool("check", false, "diff quick-scale scalars + report against the testdata goldens; exit 1 on drift")
	update := flag.Bool("update", false, "regenerate the testdata goldens instead of diffing")
	goldenDir := flag.String("golden-dir", "testdata", "directory holding the calibration goldens")
	flag.Parse()

	if *check || *update {
		packs := gatedPacks
		if *workloadName != "" && *workloadName != "all" {
			packs = []string{*workloadName}
		}
		failed := false
		for _, name := range packs {
			if err := gatePack(name, *seed, *goldenDir, *update); err != nil {
				fmt.Fprintf(os.Stderr, "calibrate: %s: %v\n", name, err)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	sc := core.ScaleQuick
	if *scale == "standard" {
		sc = core.ScaleStandard
	}
	cfg := core.DefaultRunConfig(sc)
	cfg.Seed = *seed
	cfg.Workload = *workloadName

	// One detail run from the shared artifact layer carries every standard
	// HPM group, so no group list is needed here.
	d, err := core.ForConfig(cfg).Detail()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	c := d.SUT.AggregateCounters()
	printHeadline(os.Stdout, c)
	printTable(os.Stdout, c)
}

// gatePack runs one pack's quick-scale calibration and either pins
// (update=true) or verifies its two goldens: the headline scalars and the
// full markdown report.
func gatePack(name string, seed int64, dir string, update bool) error {
	if _, err := workload.Get(name); err != nil {
		return err
	}
	cfg := core.DefaultRunConfig(core.ScaleQuick)
	cfg.Seed = seed
	cfg.Workload = name
	art := core.ForConfig(cfg)

	d, err := art.Detail()
	if err != nil {
		return err
	}
	var scal bytes.Buffer
	printHeadline(&scal, d.SUT.AggregateCounters())

	rep, err := core.BuildReport(cfg)
	if err != nil {
		return err
	}

	scalPath := filepath.Join(dir, "golden_calibrate_quick_"+name+".txt")
	repPath := filepath.Join(dir, "golden_report_quick_"+name+".md")
	if name == workload.DefaultName {
		// The default pack is pinned by the repo's original report golden:
		// the gate and the golden test must agree on one file.
		repPath = filepath.Join(dir, "golden_report_quick.md")
	}

	if update {
		if err := os.WriteFile(scalPath, scal.Bytes(), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(repPath, []byte(rep.Markdown()), 0o644); err != nil {
			return err
		}
		fmt.Printf("calibrate: %s: wrote %s, %s\n", name, scalPath, repPath)
		return nil
	}

	if err := diffGolden(scalPath, scal.String()); err != nil {
		return err
	}
	if err := diffGolden(repPath, rep.Markdown()); err != nil {
		return err
	}
	fmt.Printf("calibrate: %s: scalars + report match goldens\n", name)
	return nil
}

// diffGolden compares got against the golden file, naming the first
// differing line so a drift report is actionable without a local diff.
func diffGolden(path, got string) error {
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("missing golden (run with -update to create it): %w", err)
	}
	if string(want) == got {
		return nil
	}
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Errorf("drift from %s at line %d:\n  golden: %s\n  got:    %s", path, i+1, w, g)
		}
	}
	return fmt.Errorf("drift from %s (length only)", path)
}

// printHeadline writes the calibration scalars: the rates the paper's
// Tables 3-5 pin and the tuning loop watches.
func printHeadline(w io.Writer, c power4.Counters) {
	inst := float64(c.Get(power4.EvInstCompleted))
	fmt.Fprintf(w, "instructions=%.3e  CPI=%.2f  dispatched/completed=%.2f\n", inst, c.CPI(), c.SpeculationRate())
	fmt.Fprintf(w, "miss/load=%.3f  miss/store=%.3f  cond-miss=%.3f  target-miss=%.3f\n",
		c.Ratio(power4.EvL1DLoadMiss, power4.EvLoads),
		c.Ratio(power4.EvL1DStoreMiss, power4.EvStores),
		c.Ratio(power4.EvBrCondMispred, power4.EvBrCond),
		c.Ratio(power4.EvBrTargetMispred, power4.EvBrIndirect))
	lm := float64(c.Get(power4.EvL1DLoadMiss))
	fmt.Fprintf(w, "sources: L2=%.2f L2.75shr=%.3f L2.75mod=%.3f L3=%.2f L3.5=%.3f mem=%.3f\n",
		float64(c.Get(power4.EvDataFromL2))/lm,
		float64(c.Get(power4.EvDataFromL275Shr))/lm,
		float64(c.Get(power4.EvDataFromL275Mod))/lm,
		float64(c.Get(power4.EvDataFromL3))/lm,
		float64(c.Get(power4.EvDataFromL35))/lm,
		float64(c.Get(power4.EvDataFromMem))/lm)
	fmt.Fprintf(w, "DERAT=1/%.0f  DTLB/DERAT=%.2f  IERAT=1/%.0f  ITLB=1/%.0f  L1I=1/%.0f\n\n",
		inst/float64(c.Get(power4.EvDERATMiss)),
		c.Ratio(power4.EvDTLBMiss, power4.EvDERATMiss),
		inst/float64(c.Get(power4.EvIERATMiss)),
		inst/float64(c.Get(power4.EvITLBMiss)),
		inst/float64(c.Get(power4.EvL1IMiss)))
}

// printTable writes the per-event CPI-contribution table.
func printTable(w io.Writer, c power4.Counters) {
	inst := float64(c.Get(power4.EvInstCompleted))
	p := power4.DefaultPenalties()
	rows := []struct {
		name string
		ev   power4.Event
		pen  float64
	}{
		{"cond mispredict", power4.EvBrCondMispred, p.CondMispred},
		{"target mispredict", power4.EvBrTargetMispred, p.TargetMispred},
		{"DERAT miss", power4.EvDERATMiss, p.DERATMiss},
		{"IERAT miss", power4.EvIERATMiss, p.DERATMiss},
		{"DTLB walk", power4.EvDTLBMiss, p.TLBWalk},
		{"ITLB walk", power4.EvITLBMiss, p.TLBWalk},
		{"store miss", power4.EvL1DStoreMiss, p.StoreMissCost},
		{"data from L2", power4.EvDataFromL2, p.L2Latency},
		{"data from L2.75", power4.EvDataFromL275Mod, p.RemoteL2},
		{"data from L3", power4.EvDataFromL3, p.L3Latency},
		{"data from L3.5", power4.EvDataFromL35, p.RemoteL3},
		{"data from memory", power4.EvDataFromMem, p.MemLatency},
		{"ifetch from L2", power4.EvIFetchL2, p.IMissL2},
		{"ifetch from L3", power4.EvIFetchL3, p.IMissL3},
		{"ifetch from memory", power4.EvIFetchMem, p.IMissMem},
		{"SYNC drain", power4.EvSyncCount, p.SyncDrainUser},
	}
	fmt.Fprintln(w, "event                  rate           max CPI contribution (rate x penalty)")
	for _, r := range rows {
		n := float64(c.Get(r.ev))
		fmt.Fprintf(w, "%-20s  1/%-11.0f  %.3f\n", r.name, inst/n, n*r.pen/inst)
	}
	fmt.Fprintln(w, "\n(loads and I-fetches are partially hidden by the out-of-order window and")
	fmt.Fprintln(w, "prefetching; the contribution column is the unhidden worst case.)")
}
