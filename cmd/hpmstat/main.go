// Command hpmstat mirrors the AIX hpmstat utility the paper used: it runs
// the workload with one hardware-counter group active and prints the
// sampled counts window by window.
//
// Usage:
//
//	hpmstat [-group cpi|branch|translation|dsource|prefetch|ifetch|sync|kernel]
//	        [-ir N] [-seconds N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jasworkload/internal/core"
	"jasworkload/internal/hpm"
	"jasworkload/internal/tools"
)

func main() {
	group := flag.String("group", "cpi", "counter group to collect (one active group, as on POWER4)")
	ir := flag.Int("ir", 30, "injection rate")
	seconds := flag.Int("seconds", 60, "run length in simulated seconds")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	rows := flag.Int("rows", 30, "sample rows to print (most recent)")
	flag.Parse()

	names := make([]string, 0)
	for _, g := range hpm.StandardGroups() {
		names = append(names, g.Name)
	}
	if _, ok := hpm.GroupByName(hpm.StandardGroups(), *group); !ok {
		fmt.Fprintf(os.Stderr, "hpmstat: unknown group %q (have: %s)\n", *group, strings.Join(names, ", "))
		os.Exit(2)
	}

	cfg := core.DefaultRunConfig(core.ScaleQuick)
	cfg.IR = *ir
	cfg.Seed = *seed
	cfg.DurationMS = float64(*seconds) * 1000
	cfg.RampMS = cfg.DurationMS / 5

	d, err := core.RunDetail(cfg, *group)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpmstat:", err)
		os.Exit(1)
	}
	fmt.Print(tools.HPMStat(d.Monitors[*group], *rows))
}
