// Package jasworkload reproduces, as a simulation study, the ISPASS 2007
// paper "Characterizing a Complex J2EE Workload: A Comprehensive Analysis
// and Opportunities for Optimizations" (Shuf & Steiner).
//
// The paper measured SPECjAppServer2004 on a 4-core POWER4 server (AIX, J9
// JVM, WebSphere, DB2) with hardware performance counters. This library
// rebuilds that entire measured stack as deterministic simulators — the
// multi-tier workload, the JVM heap/GC/JIT, a database with a buffer pool,
// and the POWER4 microarchitecture (caches, MCM topology, ERAT/TLB, branch
// predictors, prefetcher) — and, on top, the paper's actual contribution:
// the characterization pipeline that regenerates every figure and table.
//
// Quick start:
//
//	cfg := jasworkload.DefaultConfig(jasworkload.ScaleQuick)
//	report, err := jasworkload.Characterize(cfg)
//	if err != nil { ... }
//	fmt.Print(report)
//
// Individual experiments are exposed through RunRequestLevel (Figures 2-4)
// and RunDetail (Figures 5-10, locking); see the examples directory.
//
// All experiments draw from a shared run-artifact layer: runs are cached
// per configuration (ForConfig), so any mix of figures and tables for one
// Config costs at most one request-level and one instruction-detail
// simulation. Independent simulations (cross-check variants, ablation
// sweeps) execute concurrently, bounded by SetParallelism.
package jasworkload

import (
	"jasworkload/internal/core"
	"jasworkload/internal/mem"
)

// Scale selects run dimensions; see the constants.
type Scale = core.Scale

// Run scales.
const (
	// ScaleQuick is a seconds-long smoke configuration (IR 30, 256 MB heap,
	// 850-method universe). Trends hold; magnitudes are noisier.
	ScaleQuick = core.ScaleQuick
	// ScaleStandard is the paper's configuration (IR 40, 1 GB heap, 8,500
	// methods) over a compressed steady-state interval.
	ScaleStandard = core.ScaleStandard
	// ScaleFull runs the paper's 60-minute shape including the 5-minute
	// ramp.
	ScaleFull = core.ScaleFull
)

// Page sizes for the Java heap configuration (Section 4.2.2 ablation).
const (
	Page4K  = mem.Page4K
	Page16M = mem.Page16M
)

// Config parameterizes a characterization run.
type Config = core.RunConfig

// DefaultConfig returns the paper's configuration at the given scale.
func DefaultConfig(scale Scale) Config { return core.DefaultRunConfig(scale) }

// Report is the paper-vs-measured comparison across every experiment.
type Report = core.Report

// Characterize runs every experiment (Figures 2-10, the Section 4.2.4
// locking table, and the whole-system scalars) and returns the comparison
// report.
func Characterize(cfg Config) (*Report, error) { return core.BuildReport(cfg) }

// RequestLevelRun is a request-level-fidelity execution; Figures 2, 3 and 4
// are views of it.
type RequestLevelRun = core.RequestLevelRun

// RunRequestLevel executes the workload at request-level fidelity.
func RunRequestLevel(cfg Config) (*RequestLevelRun, error) { return core.RunRequestLevel(cfg) }

// DetailRun is an instruction-detail execution with HPM monitors attached;
// Figures 5-10 and the locking table are views of it.
type DetailRun = core.DetailRun

// RunDetail executes the workload at sampled instruction-level fidelity.
// With no group names, all standard HPM groups are collected.
func RunDetail(cfg Config, groups ...string) (*DetailRun, error) {
	return core.RunDetail(cfg, groups...)
}

// LargePageAblation holds the Section 4.2.2 comparison of 16 MB versus
// 4 KB pages for the Java heap.
type LargePageAblation = core.LargePageAblation

// RunLargePageAblation executes both page-size configurations and compares
// TLB behaviour.
func RunLargePageAblation(cfg Config) (LargePageAblation, error) {
	return core.RunLargePageAblation(cfg)
}

// ScalarsResult holds the whole-system scalar observations (JOPS/IR, CPU
// utilization and user/kernel split, the disk-starved comparison).
type ScalarsResult = core.ScalarsResult

// RunScalars executes the RAM-disk run plus the 2-disk comparison.
func RunScalars(cfg Config) (ScalarsResult, error) { return core.RunScalars(cfg) }

// IdleCPI measures the unloaded system's CPI (paper: ~0.7).
func IdleCPI(cfg Config) float64 { return core.IdleCPI(cfg) }

// CrossChecks holds the Trade6 and Sovereign-JVM robustness comparisons
// (Sections 3.1, 4.1.1 and 6 of the paper).
type CrossChecks = core.CrossChecks

// RunCrossChecks executes the Trade6 and Sovereign-JVM comparison runs.
func RunCrossChecks(cfg Config) (CrossChecks, error) { return core.RunCrossChecks(cfg) }

// Artifact is the cached pair of runs (request-level, instruction-detail)
// plus derived results for one configuration. Every figure and table is a
// memoized view over it.
type Artifact = core.Artifact

// ForConfig returns the process-wide artifact for cfg, creating it on
// first use. Repeated calls with an equivalent configuration return the
// same artifact, so experiments never re-simulate.
func ForConfig(cfg Config) *Artifact { return core.ForConfig(cfg) }

// FlushRuns drops every cached artifact. Subsequent experiments
// re-simulate; useful for benchmarking end-to-end cost or bounding memory
// in long-lived processes.
func FlushRuns() { core.Flush() }

// Parallelism reports the current bound on concurrently executing
// simulations (default: one per CPU).
func Parallelism() int { return core.Parallelism() }

// SetParallelism bounds how many simulations may execute concurrently and
// returns the previous value. n < 1 resets to the number of CPUs.
// Results are bit-identical at any setting; only wall clock changes.
func SetParallelism(n int) int { return core.SetParallelism(n) }

// Pipelined reports whether detail-mode simulation runs its decoupled
// stage pipeline (the default) or the fused per-instruction loop.
func Pipelined() bool { return core.Pipelined() }

// SetPipelined selects between the decoupled detail pipeline and the
// fused loop for subsequent runs, returning the previous setting. HPM
// counters and reports are bit-identical either way; only execution
// shape (and wall clock on hosts with spare CPUs) changes.
func SetPipelined(enabled bool) bool { return core.SetPipelined(enabled) }

// Sharded reports whether detail-mode simulation shards the instruction
// stream across per-simulated-core goroutines with a deterministic
// coherence merge (the default). The auto mode collapses to the fused
// loop on single-CPU hosts, so the knob is never a pessimization.
func Sharded() bool { return core.Sharded() }

// SetSharded selects between the core-sharded detail schedule and the
// pipelined/fused ones for subsequent runs, returning the previous
// setting. HPM counters and reports are bit-identical at any shard
// count; only execution shape (and wall clock on multi-CPU hosts)
// changes.
func SetSharded(enabled bool) bool { return core.SetSharded(enabled) }

// Sweep declares a what-if grid: a base Config plus one Axis per swept
// parameter. Expand yields the grid's cells (canonicalized and deduped);
// running the cells through the artifact layer shares one request-level
// simulation among all cells whose configs differ only in detail-only
// knobs (heap page size at equal heap capacity, detail sampling
// fraction), so an N-cell grid costs distinct-request-key request-level
// runs, not N.
type Sweep = core.Sweep

// Axis is one swept parameter and its values; see SweepParams for the
// accepted parameter names.
type Axis = core.Axis

// SweepCell is one expanded grid cell: its index, human-readable label,
// canonical Config, and the labels of any duplicate grid points that
// folded onto it.
type SweepCell = core.Cell

// SweepParams lists the parameter names a sweep Axis may use.
func SweepParams() []string { return core.SweepParams() }

// DistinctRequestKeys reports how many request-level simulations the
// cells cost under split-key sharing.
func DistinctRequestKeys(cells []SweepCell) int { return core.DistinctRequestKeys(cells) }

// FidelityCacheStats counts run-store lookups for one fidelity.
type FidelityCacheStats = core.FidelityCacheStats

// SplitCacheStats reports hit/miss counters for the two store layers:
// full-config artifacts and shared request-level cells.
func SplitCacheStats() (artifact, requestLevel FidelityCacheStats) { return core.SplitCacheStats() }

// SimCounts reports how many simulations have actually executed, by kind
// ("request-level", "detail", "variant") — the ground truth behind any
// sharing claim.
func SimCounts() map[string]int { return core.SimCounts() }

// ShareRequestLevel reports whether request-level runs are shared across
// configs that agree on every request-level-visible knob (the default).
func ShareRequestLevel() bool { return core.ShareRequestLevel() }

// SetShareRequestLevel toggles split-key request-level sharing and
// returns the previous setting. Disabling reproduces the pre-split
// store: every distinct config pays for its own request-level run.
// Reports and figures are byte-identical either way.
func SetShareRequestLevel(enabled bool) bool { return core.SetShareRequestLevel(enabled) }
