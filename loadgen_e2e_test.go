package jasworkload

import (
	"bytes"
	"testing"

	"jasworkload/internal/core"
	"jasworkload/internal/loadgen"
)

// TestLoadgenRecordReplayReport is the end-to-end determinism contract of
// the load generator: record a ramp run's arrival trace (standalone — no
// simulation), then run both the generative spec and the recorded trace
// through the full characterization. The two configs are distinct
// experiments (different canonical configs, different artifacts, two full
// simulation pairs), yet their reports are byte-identical, because the
// trace replays exactly the arrivals the spec generates. Re-recording the
// replayed trace reproduces the trace file byte for byte.
func TestLoadgenRecordReplayReport(t *testing.T) {
	const rampSpec = `{"version":1,"cohorts":[{"name":"rampers","process":` +
		`{"kind":"ramp","start_factor":0.5,"target_factor":1.5,"steps":4,"step_ms":3000}}]}`

	base := DefaultConfig(ScaleQuick)
	base.DurationMS = 12_000
	base.RampMS = 2_000
	base.Seed = 7

	rampCfg := base
	rampCfg.Arrival = rampSpec

	tr, err := core.RecordArrivalTrace(rampCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Windows) != 12 {
		t.Fatalf("recorded %d windows, want 12", len(tr.Windows))
	}
	var traceFile bytes.Buffer
	if err := loadgen.WriteTrace(&traceFile, tr); err != nil {
		t.Fatal(err)
	}

	traceCfg := base
	traceCfg.Arrival = tr.Spec().Canonical()

	// Distinct load shapes never coalesce: steady (empty), the ramp spec,
	// and its recorded trace are three different canonical configs — and
	// the page-size/detail-frac RequestKey sharing still applies inside
	// each shape but never across shapes.
	if rampCfg.Canonical() == base.Canonical() || traceCfg.Canonical() == base.Canonical() ||
		rampCfg.Canonical() == traceCfg.Canonical() {
		t.Fatal("arrival shapes coalesced in the canonical config")
	}
	fracA, fracB := rampCfg, rampCfg
	fracA.DetailFrac, fracB.DetailFrac = 0.01, 0.03
	if fracA.RequestKey() != fracB.RequestKey() {
		t.Fatal("detail-frac variants of one arrival shape stopped sharing the request-level run")
	}
	if rampCfg.RequestKey() == traceCfg.RequestKey() {
		t.Fatal("different arrival shapes share a RequestKey")
	}

	FlushRuns()
	core.ResetSimCounts()
	rampRep, err := Characterize(rampCfg)
	if err != nil {
		t.Fatal(err)
	}
	traceRep, err := Characterize(traceCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The markdown rendering carries no job identity, so byte-equality is
	// the honest comparison across two distinct configs.
	if rampRep.Markdown() != traceRep.Markdown() {
		t.Fatalf("trace replay diverged from the generating run:\n--- spec ---\n%s\n--- trace ---\n%s",
			rampRep.Markdown(), traceRep.Markdown())
	}

	// Sim budget: two distinct shapes cost exactly one request-level and
	// one detail run each — replay is a new experiment, not a cache hit,
	// but it is also never more than one pair.
	sims := core.SimCounts()
	if sims["request-level"] != 2 || sims["detail"] != 2 {
		t.Fatalf("sim counts = %v, want 2 request-level and 2 detail", sims)
	}

	// Closing the loop: recording the trace config re-emits the file.
	again, err := core.RecordArrivalTrace(traceCfg)
	if err != nil {
		t.Fatal(err)
	}
	var reFile bytes.Buffer
	if err := loadgen.WriteTrace(&reFile, again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceFile.Bytes(), reFile.Bytes()) {
		t.Fatal("re-recording the replayed trace is not byte-identical")
	}
}

// TestLoadgenSteadySpecMatchesLegacyShape sanity-checks that an explicit
// one-cohort steady spec drives the same offered load as the legacy loop
// (same mean JOPS within tolerance) while remaining a distinct experiment
// (different RNG consumption order, so a different canonical config and
// different — but valid — measurements).
func TestLoadgenSteadySpecMatchesLegacyShape(t *testing.T) {
	base := DefaultConfig(ScaleQuick)
	base.DurationMS = 60_000
	base.RampMS = 10_000
	steady := base
	steady.Arrival = `{"version":1,"cohorts":[{"name":"all"}]}`

	legacy, err := RunRequestLevel(base)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := RunRequestLevel(steady)
	if err != nil {
		t.Fatal(err)
	}
	lj, sj := legacy.Fig2().JOPS, spec.Fig2().JOPS
	if lj <= 0 || sj <= 0 {
		t.Fatalf("JOPS legacy %v spec %v", lj, sj)
	}
	if ratio := sj / lj; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("steady spec JOPS %v vs legacy %v (ratio %.3f), want within 10%%", sj, lj, ratio)
	}
}
