package jasworkload

import (
	"strings"
	"testing"
)

// The facade smoke test: the public API runs the full characterization at
// quick scale and most paper observations hold. Figure-level assertions
// live in internal/core; this guards the exported surface.
func TestCharacterizeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization skipped in -short mode")
	}
	cfg := DefaultConfig(ScaleQuick)
	rep, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 40 {
		t.Fatalf("report has only %d rows", len(rep.Rows))
	}
	pass := 0
	for _, row := range rep.Rows {
		if row.Holds {
			pass++
		}
	}
	if frac := float64(pass) / float64(len(rep.Rows)); frac < 0.9 {
		t.Fatalf("only %d/%d paper observations hold:\n%s", pass, len(rep.Rows), rep.String())
	}
	md := rep.Markdown()
	if !strings.Contains(md, "| ID |") {
		t.Fatal("markdown rendering broken")
	}
}

func TestPublicEntryPoints(t *testing.T) {
	cfg := DefaultConfig(ScaleQuick)
	cfg.DurationMS = 40_000
	cfg.RampMS = 10_000

	run, err := RunRequestLevel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Fig2().JOPS <= 0 {
		t.Fatal("no throughput via facade")
	}

	d, err := RunDetail(cfg, "cpi")
	if err != nil {
		t.Fatal(err)
	}
	f5, err := d.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if f5.MeanCPI <= 0 {
		t.Fatal("no CPI via facade")
	}

	if cpi := IdleCPI(cfg); cpi <= 0 || cpi > 1.5 {
		t.Fatalf("idle CPI via facade = %v", cpi)
	}
}

func TestConfigPageSizes(t *testing.T) {
	cfg := DefaultConfig(ScaleQuick)
	if cfg.HeapPageSize != Page16M {
		t.Fatal("default heap pages must be large (the paper's tuned setup)")
	}
	cfg.HeapPageSize = Page4K // the ablation baseline must be expressible
	if cfg.HeapPageSize != Page4K {
		t.Fatal("page size not settable")
	}
}
