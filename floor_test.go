// The bench-smoke floor check: pipelining must never be a pessimization
// on the CI host. The pipeline auto-selects its stage schedule per host
// (concurrent rings with CPUs to overlap stages, collapsed onto the
// fused loop without), so the production configuration is required to
// keep pace with the fused loop everywhere — a regression here means the
// mode selection or a stage got slower than the loop it replaced.
package jasworkload

import (
	"os"
	"testing"
	"time"

	"jasworkload/internal/isa"
	"jasworkload/internal/power4"
)

// TestPipelinedFloor fails if the auto-configured detail pipeline runs
// the recorded stream slower than the fused loop. Gated behind
// JAS_BENCH_FLOOR (set by `make bench-smoke`) because it is a timing
// assertion: the two legs alternate within each round so host noise
// lands on both, minima are compared so one contended sample cannot
// fail the build, and a small tolerance absorbs timer jitter.
func TestPipelinedFloor(t *testing.T) {
	if os.Getenv("JAS_BENCH_FLOOR") == "" {
		t.Skip("timing floor; run via `make bench-smoke` (JAS_BENCH_FLOOR=1)")
	}
	trace := benchDetailTrace(t)

	fused := func() time.Duration {
		sut := benchStreamCore(t)
		start := time.Now()
		isa.Replay(trace, sut.Cores[0], isa.DefaultBatchCap)
		return time.Since(start)
	}
	pipelined := func() time.Duration {
		sut := benchStreamCore(t)
		pipe, err := power4.NewPipeline(sut.Cores, sut.Hier, power4.PipelineConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer pipe.Close()
		start := time.Now()
		isa.Replay(trace, pipe.Sink(0), isa.DefaultBatchCap)
		pipe.Drain()
		return time.Since(start)
	}

	const rounds = 5
	fusedMin, pipedMin := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < rounds; r++ {
		if d := fused(); d < fusedMin {
			fusedMin = d
		}
		if d := pipelined(); d < pipedMin {
			pipedMin = d
		}
	}
	t.Logf("fused min %v, pipelined min %v over %d paired rounds (%d instr)",
		fusedMin, pipedMin, rounds, len(trace))

	// 3% tolerance: below measured paired-run jitter on an idle host,
	// far below any real mode-selection or stage regression.
	if limit := fusedMin + fusedMin*3/100; pipedMin > limit {
		t.Errorf("pipelined detail stream is a pessimization: min %v vs fused min %v (floor %v)",
			pipedMin, fusedMin, limit)
	}
}

// TestShardedFloor is the same guarantee for the core-sharded schedule:
// the auto-configured shard group (which collapses to the fused loop on
// 1-CPU hosts and runs one worker per simulated core elsewhere) must
// never run the interleaved multi-core stream slower than the fused loop
// on the running host. Both legs consume the identical round-robin feed,
// so the comparison isolates the schedule, not the feed shape.
func TestShardedFloor(t *testing.T) {
	if os.Getenv("JAS_BENCH_FLOOR") == "" {
		t.Skip("timing floor; run via `make bench-smoke` (JAS_BENCH_FLOOR=1)")
	}
	trace := benchDetailTrace(t)
	const chunk = 4096

	feed := func(sinks []isa.BatchSink) {
		for off, c := 0, 0; off < len(trace); off, c = off+chunk, c+1 {
			end := off + chunk
			if end > len(trace) {
				end = len(trace)
			}
			sinks[c%len(sinks)].ConsumeBatch(trace[off:end])
		}
	}
	fused := func() time.Duration {
		sut := benchStreamCore(t)
		sinks := make([]isa.BatchSink, len(sut.Cores))
		for i := range sinks {
			sinks[i] = sut.Cores[i]
		}
		start := time.Now()
		feed(sinks)
		return time.Since(start)
	}
	sharded := func() time.Duration {
		sut := benchStreamCore(t)
		g, err := power4.NewShardGroup(sut.Cores, sut.Hier, power4.ShardConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		sinks := make([]isa.BatchSink, len(sut.Cores))
		for i := range sinks {
			sinks[i] = g.Sink(i)
		}
		start := time.Now()
		feed(sinks)
		g.Drain()
		return time.Since(start)
	}

	const rounds = 5
	fusedMin, shardMin := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < rounds; r++ {
		if d := fused(); d < fusedMin {
			fusedMin = d
		}
		if d := sharded(); d < shardMin {
			shardMin = d
		}
	}
	t.Logf("fused min %v, sharded-auto min %v over %d paired rounds (%d instr)",
		fusedMin, shardMin, rounds, len(trace))

	if limit := fusedMin + fusedMin*3/100; shardMin > limit {
		t.Errorf("sharded detail stream is a pessimization: min %v vs fused min %v (floor %v)",
			shardMin, fusedMin, limit)
	}
}
