package jasworkload

import (
	"runtime"
	"testing"
)

// TestReportDeterminism is the regression guard for the parallel
// experiment scheduler: the full report must be byte-identical run over
// run for the same seed, regardless of how many OS threads or concurrent
// simulations are allowed. Each simulation owns its seeded RNGs and SUT,
// so scheduling order can never leak into results.
func TestReportDeterminism(t *testing.T) {
	cfg := DefaultConfig(ScaleQuick)
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000

	build := func() string {
		FlushRuns()
		rep, err := Characterize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Markdown()
	}

	baseline := build()
	if baseline == "" {
		t.Fatal("empty report")
	}

	// Same process, cold cache: identical.
	if again := build(); again != baseline {
		t.Fatalf("report changed across cold-cache rebuilds:\n--- first ---\n%s\n--- second ---\n%s", baseline, again)
	}

	// Serial execution (parallelism 1) must match.
	prev := SetParallelism(1)
	serial := build()
	SetParallelism(prev)
	if serial != baseline {
		t.Fatal("report differs between parallel and serial scheduling")
	}

	// More OS threads than the default must not change anything either.
	oldProcs := runtime.GOMAXPROCS(2 * runtime.NumCPU())
	SetParallelism(2 * runtime.NumCPU())
	wide := build()
	runtime.GOMAXPROCS(oldProcs)
	SetParallelism(prev)
	if wide != baseline {
		t.Fatal("report differs under a different GOMAXPROCS")
	}
}

// TestSeedChangesReport is the converse guard: a different seed must
// actually produce different measurements, proving the determinism test
// is not vacuously comparing constants.
func TestSeedChangesReport(t *testing.T) {
	cfg := DefaultConfig(ScaleQuick)
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000

	FlushRuns()
	a, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	b, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Markdown() == b.Markdown() {
		t.Fatal("different seeds produced byte-identical reports")
	}
}
