// Benchmarks regenerating every table and figure of the paper. Each
// benchmark reports the headline quantity the paper's artifact shows, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
//
// The figure benchmarks are views over the shared run-artifact layer: the
// first benchmark to need a fidelity pays for its simulation, and every
// later iteration (and benchmark) reuses the cached run, so these measure
// view-derivation cost. BenchmarkBuildReport flushes the cache each
// iteration and therefore measures the true end-to-end pipeline.
//
// For paper-scale dimensions (IR 40, 1 GB heap, 8,500 methods) run
// `go run ./cmd/jasrun -scale standard`.
package jasworkload

import (
	"runtime"
	"testing"

	"jasworkload/internal/core"
	"jasworkload/internal/isa"
	"jasworkload/internal/loadgen"
	"jasworkload/internal/power4"
	"jasworkload/internal/server"
	"jasworkload/internal/sim"
	"jasworkload/internal/workload"
)

func quickCfg() Config { return DefaultConfig(ScaleQuick) }

// requestLevel fetches the cached request-level run (simulating on the
// first call only).
func requestLevel(b *testing.B) *core.RequestLevelRun {
	b.Helper()
	run, err := RunRequestLevel(quickCfg())
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// detail fetches the cached instruction-detail run (simulating on the
// first call only).
func detail(b *testing.B) *core.DetailRun {
	b.Helper()
	d, err := RunDetail(quickCfg())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkFig2Throughput regenerates Figure 2: per-class transaction
// throughput over the run, stabilizing after ramp-up.
func BenchmarkFig2Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := requestLevel(b)
		f2 := run.Fig2()
		var total float64
		for rt := 0; rt < server.NumRequestTypes; rt++ {
			total += f2.SteadyMean[rt]
		}
		b.ReportMetric(total, "req/s")
		b.ReportMetric(f2.JOPS/float64(run.Cfg.IR), "JOPS/IR")
	}
}

// BenchmarkFig3GC regenerates Figure 3: GC pause, interval, and share of
// runtime.
func BenchmarkFig3GC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := requestLevel(b)
		f3 := run.Fig3()
		b.ReportMetric(f3.Summary.MeanPauseMS, "gc-ms")
		b.ReportMetric(f3.Summary.MeanIntervalSec, "gc-interval-s")
		b.ReportMetric(f3.Summary.PercentOfRuntime, "gc-%runtime")
	}
}

// BenchmarkFig4Profile regenerates Figure 4: the component breakdown and
// the flat method profile.
func BenchmarkFig4Profile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := requestLevel(b)
		f4 := run.Fig4()
		b.ReportMetric(f4.WASOverWebPlusDB, "WAS/(web+db2)")
		b.ReportMetric(float64(f4.Report.MethodsFor50Pct), "methods-for-50%")
	}
}

// BenchmarkFig5CPI regenerates Figure 5: CPI, speculation rate, L1 miss.
func BenchmarkFig5CPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := detail(b)
		f5, err := d.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f5.MeanCPI, "CPI")
		b.ReportMetric(f5.MeanSpec, "disp/comp")
		b.ReportMetric(f5.IdleCPI, "idle-CPI")
	}
}

// BenchmarkFig6Branch regenerates Figure 6: branch prediction.
func BenchmarkFig6Branch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := detail(b)
		f6, err := d.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f6.MeanCondMiss, "cond-miss-%")
		b.ReportMetric(100*f6.MeanTargetMiss, "target-miss-%")
	}
}

// BenchmarkFig7TLB regenerates Figure 7: ERAT/TLB miss frequencies and the
// large-page ablation.
func BenchmarkFig7TLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := detail(b)
		f7, err := d.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f7.InstrBetweenDERAT, "instr/DERAT-miss")
		b.ReportMetric(100*f7.TLBSatisfiesDERAT, "TLB-covers-%")
	}
}

// BenchmarkFig7LargePages regenerates the Section 4.2.2 large-page
// ablation behind Figure 7.
func BenchmarkFig7LargePages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		abl, err := RunLargePageAblation(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(abl.DTLBHitGainPct, "DTLB-hit-gain-%")
		b.ReportMetric(abl.ITLBHitGainPct, "ITLB-hit-gain-%")
	}
}

// BenchmarkFig8L1D regenerates Figure 8: L1 D-cache load/store miss rates.
func BenchmarkFig8L1D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := detail(b)
		f8, err := d.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f8.MeanLoadMiss, "miss/load")
		b.ReportMetric(f8.MeanStoreMiss, "miss/store")
	}
}

// BenchmarkFig9Sourcing regenerates Figure 9: where L1 misses are
// satisfied from.
func BenchmarkFig9Sourcing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := detail(b)
		f9, err := d.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		var l2 float64
		for src, v := range f9.Share {
			if src.String() == "L2" {
				l2 = v
			}
		}
		b.ReportMetric(100*l2, "L2-share-%")
		b.ReportMetric(100*f9.ModifiedShare, "L2.75-mod-%")
	}
}

// BenchmarkTableLocking regenerates the Section 4.2.4 locking/SYNC table.
func BenchmarkTableLocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := detail(b)
		lk, err := d.Locking()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lk.InstrPerLarx, "instr/LARX")
		b.ReportMetric(100*lk.SyncSRQShareKernel, "kernel-SYNC-%")
	}
}

// BenchmarkFig10Correlation regenerates Figure 10: the CPI correlation
// analysis.
func BenchmarkFig10Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := detail(b)
		f10, err := d.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if r, ok := f10.Corr("Cond. Branch Mispred."); ok {
			b.ReportMetric(r, "r(CPI,cond-miss)")
		}
		b.ReportMetric(f10.TargetMissVsICacheMiss, "r(tgt,L1I)")
	}
}

// BenchmarkTableScalars regenerates the Section 2/4.1 whole-system
// scalars, including the disk-starved comparison.
func BenchmarkTableScalars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := RunScalars(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sc.JOPSPerIR, "JOPS/IR")
		b.ReportMetric(100*sc.UtilRAMDisk, "util-%")
		b.ReportMetric(100*sc.DiskIOWaitShare, "disk-iowait-%")
	}
}

// BenchmarkAblationL2Size runs the Section 4.2.3 what-if: CPI versus L2
// capacity ("Increasing the size of the L2 cache can improve performance").
func BenchmarkAblationL2Size(b *testing.B) {
	cfg := quickCfg()
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	for i := 0; i < b.N; i++ {
		pts, err := core.L2SizeStudy(cfg, []int{768, 3072})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].CPI, "CPI@768KB")
		b.ReportMetric(pts[1].CPI, "CPI@3MB")
	}
}

// BenchmarkAblationL3Latency runs the Section 4.2.3 what-if: CPI versus L3
// latency ("a lower latency to L3 could also deliver sizeable performance
// benefits").
func BenchmarkAblationL3Latency(b *testing.B) {
	cfg := quickCfg()
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	for i := 0; i < b.N; i++ {
		pts, err := core.L3LatencyStudy(cfg, []float64{110, 40})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].CPI, "CPI@110cyc")
		b.ReportMetric(pts[1].CPI, "CPI@40cyc")
	}
}

// BenchmarkAblationCodePages runs the Section 4.2.2 follow-on: JIT code in
// 16 MB pages.
func BenchmarkAblationCodePages(b *testing.B) {
	cfg := quickCfg()
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	for i := 0; i < b.N; i++ {
		pts, err := core.CodeLargePagesStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1e6*pts[0].Extra, "ITLB-ppm@4K")
		b.ReportMetric(1e6*pts[1].Extra, "ITLB-ppm@16M")
	}
}

// BenchmarkAblationCoreScaling runs the Section 7 future-work study:
// throughput and CPI versus core count at proportional load.
func BenchmarkAblationCoreScaling(b *testing.B) {
	cfg := quickCfg()
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	for i := 0; i < b.N; i++ {
		pts, err := core.CoreScalingStudy(cfg, []int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Extra, "JOPS@2cores")
		b.ReportMetric(pts[1].Extra, "JOPS@4cores")
	}
}

// benchTrace caches one emitter-recorded detail stream so the stream
// benchmarks measure consumption, not generation, and both measure the
// exact same instructions.
var benchTrace []isa.Instr

// benchDetailTrace records ~2M instructions of the real detail-mode
// stream: the four request classes plus GC and idle work.
func benchDetailTrace(b testing.TB) []isa.Instr {
	b.Helper()
	if benchTrace != nil {
		return benchTrace
	}
	sut, err := sim.BuildSUT(sim.DefaultSUTConfig(30))
	if err != nil {
		b.Fatal(err)
	}
	rec := &isa.Recorder{}
	types := []server.RequestType{
		server.ReqBrowse, server.ReqPurchase, server.ReqManage, server.ReqCreateVehicle,
	}
	now := 0.0
	for i := 0; len(rec.Trace) < 2_000_000; i++ {
		if _, err := sut.Server.Execute(now, types[i%len(types)], rec, 0.2); err != nil {
			b.Fatal(err)
		}
		now += 33
		if i%16 == 15 {
			sut.Server.EmitGC(rec, 20_000)
			sut.Server.EmitIdle(rec, 5_000)
		}
	}
	benchTrace = rec.Trace
	return benchTrace
}

// benchStreamCore builds a fresh consuming core for a stream benchmark.
func benchStreamCore(b testing.TB) *sim.SUT {
	b.Helper()
	sut, err := sim.BuildSUT(sim.DefaultSUTConfig(30))
	if err != nil {
		b.Fatal(err)
	}
	return sut
}

// benchPipeline streams the recorded jas2004 trace through a detail
// pipeline in the given configuration, with a Drain per iteration
// modelling the engine's once-per-window barrier.
func benchPipeline(b *testing.B, cfg power4.PipelineConfig) {
	b.Helper()
	benchPipelineTrace(b, benchDetailTrace(b), cfg)
}

// benchPipelineTrace is benchPipeline over an explicit trace, so packs
// other than jas2004 can reuse the same consumption harness.
func benchPipelineTrace(b *testing.B, trace []isa.Instr, cfg power4.PipelineConfig) {
	b.Helper()
	sut := benchStreamCore(b)
	pipe, err := power4.NewPipeline(sut.Cores, sut.Hier, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer pipe.Close()
	sink := pipe.Sink(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		isa.Replay(trace, sink, isa.DefaultBatchCap)
		pipe.Drain()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkDetailStream measures the production detail-mode hot path:
// the recorded stream delivered through the decoupled pipeline with the
// stage schedule auto-selected for the host — concurrent stage
// goroutines when CPUs are available to overlap them, collapsed onto the
// fused loop on single-CPU hosts (where any decoupling is pure
// overhead). Fast paths enabled, as in production.
func BenchmarkDetailStream(b *testing.B) {
	benchPipeline(b, power4.PipelineConfig{})
}

// benchTraceDA caches the dataanalytics-pack stream the same way
// benchTrace caches jas2004's.
var benchTraceDA []isa.Instr

// benchDetailTraceDA records ~2M instructions of the dataanalytics
// pack's detail stream: batch-heavy classes with large sequential scans
// and a skewed method profile, cycled round-robin plus GC and idle work.
func benchDetailTraceDA(b testing.TB) []isa.Instr {
	b.Helper()
	if benchTraceDA != nil {
		return benchTraceDA
	}
	w, err := workload.Get("dataanalytics")
	if err != nil {
		b.Fatal(err)
	}
	scfg := sim.DefaultSUTConfig(30)
	scfg.App = server.AppFor(w)
	scfg.Profile = w.TuneProfile(scfg.Profile)
	sut, err := sim.BuildSUT(scfg)
	if err != nil {
		b.Fatal(err)
	}
	rec := &isa.Recorder{}
	n := sut.Server.App().NumClasses()
	now := 0.0
	for i := 0; len(rec.Trace) < 2_000_000; i++ {
		if _, err := sut.Server.Execute(now, server.RequestType(i%n), rec, 0.2); err != nil {
			b.Fatal(err)
		}
		now += 33
		if i%16 == 15 {
			sut.Server.EmitGC(rec, 20_000)
			sut.Server.EmitIdle(rec, 5_000)
		}
	}
	benchTraceDA = rec.Trace
	return benchTraceDA
}

// BenchmarkDetailStreamDataAnalytics is BenchmarkDetailStream over the
// dataanalytics pack's stream: same production pipeline, different
// instruction mix (scan-dominated data references, higher allocation
// rate), so the two legs together show how stream consumption cost
// tracks workload character rather than a single pinned trace.
func BenchmarkDetailStreamDataAnalytics(b *testing.B) {
	benchPipelineTrace(b, benchDetailTraceDA(b), power4.PipelineConfig{})
}

// BenchmarkDetailStreamRings forces the concurrent three-stage schedule
// regardless of host parallelism: the cost (or benefit) of ring handoffs
// is DetailStreamRings vs DetailStreamFused.
func BenchmarkDetailStreamRings(b *testing.B) {
	benchPipeline(b, power4.PipelineConfig{Depth: power4.DefaultPipelineDepth})
}

// BenchmarkDetailStreamInline forces the decoupled stages to run
// synchronously with no rings: DetailStreamInline vs DetailStreamFused
// isolates the cost of stage decoupling itself (annotation traffic,
// repeated decode) from the cost of the handoffs.
func BenchmarkDetailStreamInline(b *testing.B) {
	benchPipeline(b, power4.PipelineConfig{Inline: true})
}

// BenchmarkDetailStreamFused measures the single-threaded fused loop the
// pipeline decouples — the SetPipelined(false) path: batches through
// Core.ConsumeBatch, fast paths enabled. DetailStream/DetailStreamFused
// is the pipelining speedup; the bench-smoke floor check requires it to
// stay >= 1.
func BenchmarkDetailStreamFused(b *testing.B) {
	trace := benchDetailTrace(b)
	sut := benchStreamCore(b)
	c := sut.Cores[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		isa.Replay(trace, c, isa.DefaultBatchCap)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkDetailStreamReference measures the pre-batching path the
// tentpole replaced: one virtual Consume call per instruction with the
// fast paths disabled. The ratio DetailStream/DetailStreamReference is
// the headline speedup.
func BenchmarkDetailStreamReference(b *testing.B) {
	trace := benchDetailTrace(b)
	sut := benchStreamCore(b)
	c := sut.Cores[0]
	c.SetFastPaths(false)
	sut.Hier.SetFastPaths(false)
	var sink isa.Sink = c // dispatch through the interface, as before the change
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range trace {
			sink.Consume(&trace[j])
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// replayInterleaved delivers the trace in fixed-size chunks round-robin
// across per-core sinks — the multi-core feed shape the engine produces,
// where every core carries a slice of the stream over the shared
// hierarchy. The single-core stream benchmarks above deliberately
// saturate one core; this harness is for measuring schedules whose
// speedup comes from running the cores' slices concurrently.
func replayInterleaved(trace []isa.Instr, sinks []isa.BatchSink, chunk int) {
	for off, c := 0, 0; off < len(trace); off, c = off+chunk, c+1 {
		end := off + chunk
		if end > len(trace) {
			end = len(trace)
		}
		sinks[c%len(sinks)].ConsumeBatch(trace[off:end])
	}
}

const shardChunk = 4096 // instructions per core turn in the interleaved feed

// benchSharded streams the recorded trace interleaved across all cores
// through a shard group, with a Drain per iteration modelling the
// engine's once-per-window barrier.
func benchSharded(b *testing.B, cfg power4.ShardConfig) {
	b.Helper()
	trace := benchDetailTrace(b)
	sut := benchStreamCore(b)
	g, err := power4.NewShardGroup(sut.Cores, sut.Hier, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	sinks := make([]isa.BatchSink, len(sut.Cores))
	for i := range sinks {
		sinks[i] = g.Sink(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayInterleaved(trace, sinks, shardChunk)
		g.Drain()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkDetailStreamSharded measures the production core-sharded
// detail path: the interleaved multi-core stream through per-core shard
// goroutines with the deterministic coherence merge, shard count
// auto-selected for the host (collapsing to the fused loop on 1-CPU
// hosts). Its honest fused baseline is BenchmarkDetailStreamFusedMulti —
// identical feed, no shard machinery; benchjson derives shard_speedup
// from that pair.
func BenchmarkDetailStreamSharded(b *testing.B) {
	benchSharded(b, power4.ShardConfig{})
}

// BenchmarkDetailStreamShardedForced forces one worker per simulated
// core regardless of host parallelism: ShardedForced vs FusedMulti is
// the cost of the shard machinery itself (queue handoffs, event
// recording, the merge) when the host cannot overlap the workers.
func BenchmarkDetailStreamShardedForced(b *testing.B) {
	benchSharded(b, power4.ShardConfig{Shards: 4})
}

// BenchmarkDetailStreamFusedMulti measures the fused loop over the same
// interleaved multi-core feed the sharded benchmarks consume — the
// SetSharded(false) reference for shard_speedup.
func BenchmarkDetailStreamFusedMulti(b *testing.B) {
	trace := benchDetailTrace(b)
	sut := benchStreamCore(b)
	sinks := make([]isa.BatchSink, len(sut.Cores))
	for i := range sinks {
		sinks[i] = sut.Cores[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayInterleaved(trace, sinks, shardChunk)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// Allocation ceilings for BenchmarkBuildReport. The pooling pass (lazy
// buffer-pool residency tables, retained ref-list capacity, headroom on
// first ref growth) took the end-to-end report from 392k allocs and
// 246 MB per op down to ~368k and ~199 MB; the ceilings sit between the
// two so a regression back toward the old numbers fails the benchmark
// instead of silently landing in the checked-in BENCH json.
const (
	buildReportAllocCeiling = 385_000
	buildReportBytesCeiling = 230 << 20
)

// BenchmarkBuildReport regenerates the complete paper-vs-measured report
// from a cold cache every iteration — one request-level run, one detail
// run, and the two cross-check variant runs, scheduled concurrently.
func BenchmarkBuildReport(b *testing.B) {
	b.ReportAllocs()
	cfg := quickCfg()
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < b.N; i++ {
		FlushRuns()
		rep, err := Characterize(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rep.Rows)), "rows")
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if allocs := (after.Mallocs - before.Mallocs) / uint64(b.N); allocs > buildReportAllocCeiling {
		b.Fatalf("BuildReport allocation regression: %d allocs/op, ceiling %d", allocs, buildReportAllocCeiling)
	}
	if bytes := (after.TotalAlloc - before.TotalAlloc) / uint64(b.N); bytes > buildReportBytesCeiling {
		b.Fatalf("BuildReport allocation regression: %d B/op, ceiling %d", bytes, buildReportBytesCeiling)
	}
}

// BenchmarkCrossChecks regenerates the paper's robustness checks: Trade6's
// similarly small GC overhead (Section 6) and the Sovereign JVM's higher
// CPU utilization at the same injection rate (footnote 2).
func BenchmarkCrossChecks(b *testing.B) {
	cfg := quickCfg()
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	for i := 0; i < b.N; i++ {
		cc, err := RunCrossChecks(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cc.Trade6GCShare, "trade6-gc-%")
		b.ReportMetric(100*cc.SovereignUtil, "sovereign-util-%")
		b.ReportMetric(100*cc.J9Util, "j9-util-%")
	}
}

// benchSweepGrid drives a page-size x detail-frac what-if grid through
// the artifact store, all cells concurrent, flushing the store each
// iteration so every request-level run is paid for inside the timed
// region. sims/cell is the number of request-level simulations actually
// executed per grid cell: 1.0 without split-key sharing, and
// distinct(RequestKey)/cells (here 1/6) with it — the tentpole's win.
func benchSweepGrid(b *testing.B, share bool) {
	cfg := quickCfg()
	cfg.DurationMS = 60_000
	cfg.RampMS = 20_000
	cells, err := core.Sweep{Base: cfg, Axes: []core.Axis{
		{Param: "heap_page", Values: []any{"4K", "16M"}},
		{Param: "detail_frac", Values: []any{0.002, 0.005, 0.01}},
	}}.Expand(64)
	if err != nil {
		b.Fatal(err)
	}
	prev := core.SetShareRequestLevel(share)
	defer core.SetShareRequestLevel(prev)
	before := core.SimCounts()["request-level"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlushRuns()
		g := core.NewGroup(Parallelism())
		for _, cell := range cells {
			g.Go(func() error {
				art := ForConfig(cell.Cfg)
				if _, err := art.RequestLevel(); err != nil {
					return err
				}
				_, err := art.Detail()
				return err
			})
		}
		if err := g.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sims := core.SimCounts()["request-level"] - before
	b.ReportMetric(float64(sims)/float64(len(cells)*b.N), "sims/cell")
	FlushRuns()
}

// BenchmarkSweepGridShared runs the 6-cell grid with split-key reuse on:
// one request-level simulation serves every cell.
func BenchmarkSweepGridShared(b *testing.B) { benchSweepGrid(b, true) }

// BenchmarkSweepGridUnshared is the pre-split foil: each cell re-buys its
// request-level run, as the unsplit cache did.
func BenchmarkSweepGridUnshared(b *testing.B) { benchSweepGrid(b, false) }

// benchLoadgenSource builds a loadgen source over jas2004-shaped rates.
func benchLoadgenSource(b testing.TB, rawSpec string) *loadgen.Source {
	b.Helper()
	spec, err := loadgen.Parse([]byte(rawSpec))
	if err != nil {
		b.Fatal(err)
	}
	src, err := spec.NewSource(loadgen.SourceConfig{
		IR:         30,
		Rates:      []float64{0.25, 0.25, 0.50, 0.60},
		ClassNames: []string{"NewOrder", "Browse", "Manage", "WorkOrder"},
		Seed:       7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return src
}

// BenchmarkLoadgenWindow measures per-window arrival-stream generation on
// the worst-case spec shape: a sweep baseline under a bursty surge
// cohort, so every window pays for segment splitting across two cohorts,
// two RNG lanes, per-class Poisson draws, and the offset sort. This is
// the per-window cost the engine adds when a run is spec-driven.
func BenchmarkLoadgenWindow(b *testing.B) {
	src := benchLoadgenSource(b, `{"version":1,"cohorts":[`+
		`{"name":"base","share":3,"process":{"kind":"sweep","period_ms":60000,"amplitude":0.3}},`+
		`{"name":"surge","share":1,"process":{"kind":"burst","on_ms":2000,"off_ms":6000,"factor":3}}]}`)
	arrivals := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrivals += len(src.Window(1000))
	}
	b.StopTimer()
	b.ReportMetric(float64(arrivals)/float64(b.N), "arrivals/window")
}

// benchTraceRamp caches the ramp-shaped detail stream the same way
// benchTrace caches the uniform one.
var benchTraceRamp []isa.Instr

// benchDetailTraceRamp records ~2M instructions whose request density
// follows a loadgen ramp (0.5x to 2x of nominal load): the per-window
// request count comes from the ramp source, so early windows are sparse
// and late windows dense, instead of the uniform one-request-per-33-ms
// cadence of benchDetailTrace.
func benchDetailTraceRamp(b testing.TB) []isa.Instr {
	b.Helper()
	if benchTraceRamp != nil {
		return benchTraceRamp
	}
	src := benchLoadgenSource(b, `{"version":1,"cohorts":[{"name":"rampers","process":`+
		`{"kind":"ramp","start_factor":0.5,"target_factor":2,"steps":8,"step_ms":5000}}]}`)
	sut, err := sim.BuildSUT(sim.DefaultSUTConfig(30))
	if err != nil {
		b.Fatal(err)
	}
	rec := &isa.Recorder{}
	reqs := 0
	for w := 0; len(rec.Trace) < 2_000_000; w++ {
		for _, a := range src.Window(1000) {
			now := float64(w)*1000 + a.OffsetMS
			if _, err := sut.Server.Execute(now, server.RequestType(a.Class), rec, 0.2); err != nil {
				b.Fatal(err)
			}
			reqs++
			if reqs%16 == 15 {
				sut.Server.EmitGC(rec, 20_000)
				sut.Server.EmitIdle(rec, 5_000)
			}
		}
	}
	benchTraceRamp = rec.Trace
	return benchTraceRamp
}

// BenchmarkDetailStreamRamp is BenchmarkDetailStream over the ramp-shaped
// stream: same production pipeline, but the request density varies 4x
// across the trace, so stream-consumption cost is measured under the
// load shapes the generator produces rather than only uniform cadence.
func BenchmarkDetailStreamRamp(b *testing.B) {
	benchPipelineTrace(b, benchDetailTraceRamp(b), power4.PipelineConfig{})
}
