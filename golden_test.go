package jasworkload

import (
	"os"
	"testing"
)

// TestReportMatchesGolden pins the quick-scale markdown report
// byte-for-byte against testdata/golden_report_quick.md, which was
// captured from the per-instruction pipeline before batching landed.
// The batched fast paths are required to be state-neutral, so any drift
// here means one of them changed observable results, not just speed.
//
// Regenerate (only after an intentional model change) with:
//
//	go run ./cmd/jasrun -markdown > testdata/golden_report_quick.md
func TestReportMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_report_quick.md")
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(ScaleQuick)
	cfg.Seed = 1
	FlushRuns()
	rep, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Markdown()
	if got == string(want) {
		return
	}

	gotLines := splitLines(got)
	wantLines := splitLines(string(want))
	n := len(gotLines)
	if len(wantLines) > n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("report drifted from golden at line %d:\n got: %q\nwant: %q", i+1, g, w)
		}
	}
	t.Fatalf("report drifted from golden: got %d bytes, want %d", len(got), len(want))
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}
